open Srpc_memory
open Srpc_types
open Srpc_simnet

let src_log = Logs.Src.create "srpc.node" ~doc:"smart-RPC runtime"

module Log = (val Logs.src_log src_log : Logs.LOG)

(* Retry envelope parameters. Attempts are total tries (first send
   included); backoff doubles per retry up to the cap, charged to the
   simulated clock. *)
type retry = { max_attempts : int; base_backoff : float; max_backoff : float }

let default_retry =
  { max_attempts = 8; base_backoff = 2.5e-4; max_backoff = 8.0e-3 }

type t = {
  id : Space_id.t;
  space : Address_space.t;
  mmu : Mmu.t;
  heap : Allocator.t;
  cache : Cache.t;
  registry : Registry.t;
  transport : Transport.t;
  session : Session.t;
  hints : Hints.t;
  policy : Srpc_policy.Engine.t option;
  mutable strategy : Strategy.t;
  procs : (string, proc) Hashtbl.t;
  mutable shipped : (int, unit) Hashtbl.t Space_id.Table.t;
      (** per peer, addresses of own data already sent in this session *)
  mutable traveling : unit Long_pointer.Table.t;
      (** own data modified elsewhere this session: the paper's modified
          data set keeps traveling with the thread of control even after
          reaching home, so stale caches at other participants are
          refreshed (section 3.4) *)
  mutable pending_allocs : pending_alloc list;
  mutable pending_frees : Long_pointer.t list;
  mutable prov_counter : int;
  mutable session_t0 : float;
      (** simulated clock at [begin_session], for the policy's measured
          session duration *)
  retry : retry;
  mutable seq : int;  (** outgoing retry-envelope sequence counter *)
  replies : (string, reply_slot) Hashtbl.t;
      (** per source endpoint, the last (seq, encoded reply) served — the
          at-most-once cache that suppresses duplicate deliveries; LRU,
          bounded by [reply_cap] *)
  reply_cap : int;
  mutable reply_tick : int;  (** LRU clock for [replies] *)
  staged : (int, staged_wb list) Hashtbl.t;
      (** per session, write-backs delivered by [Wb_stage] /
          [Wb_stage_delta] and not yet applied; [Wb_commit] applies and
          drops them, in delivery order *)
  directory : (int, string Space_id.Table.t) Hashtbl.t;
      (** copy directory (delta coherency): own-heap datum address →
          per-peer encoding that peer's cached copy agrees with. It is
          both the base image a peer's byte-range delta patches against
          and the record of who holds copies of our data. Maintained
          regardless of the strategy flag so mixed clusters stay
          coherent; cleared at close, on [Invalidate] and on abort /
          [hard_reset]. *)
  mutable state_session : int option;
      (** the session whose cached state this node currently holds; a
          frame from a newer session purges leftovers from one whose
          invalidation or abort never reached us (crashed at the time) *)
  sstash : (int, saved_sstate) Hashtbl.t;
      (** concurrent admission: parked per-session runtime state of
          open sessions other than the focused one. [shipped],
          [traveling] and the pending batches above always describe the
          focused session; switching focus swaps them through here.
          Unused (empty) in single-open mode. *)
  mutable focused : int option;
      (** the session whose state currently occupies the swappable
          fields; [None] outside concurrent mode *)
  dir_owner : (int, int) Hashtbl.t;
      (** concurrent admission: datum address -> session that recorded
          its copy-directory rows, so a session-scoped purge can drop
          exactly its rows. Unused in single-open mode. *)
}

and proc = t -> Value.t list -> Value.t list
and pending_alloc = { prov : Long_pointer.t; pa_entry : Cache.entry }
and reply_slot = { rs_seq : int; rs_reply : string; mutable rs_used : int }

and staged_wb =
  | S_full of Space_id.t * Wire.item
  | S_delta of Space_id.t * Wire.delta

and saved_sstate = {
  sv_shipped : (int, unit) Hashtbl.t Space_id.Table.t;
  sv_traveling : unit Long_pointer.Table.t;
  sv_allocs : pending_alloc list;
  sv_frees : Long_pointer.t list;
}

exception Remote_error of string
exception Unknown_procedure of string
exception Invalid_pointer of int
exception Peer_unreachable of string

let id t = t.id
let arch t = Address_space.arch t.space
let space t = t.space
let mmu t = t.mmu
let registry t = t.registry
let transport t = t.transport
let strategy t = t.strategy
let hints t = t.hints
let policy t = t.policy
let set_strategy t s =
  t.strategy <- s;
  Cache.set_policy t.cache ~grouping:s.Strategy.grouping ~grain:s.Strategy.grain
let cache t = t.cache
let heap t = t.heap
let endpoint t = Space_id.to_string t.id
let sizeof t ty = Layout.sizeof_name t.registry (arch t) ty

let in_heap t addr = addr >= Allocator.base t.heap && addr < Allocator.limit t.heap

(* --- datum-granular access marks (race-checker witnesses) --- *)

(* A datum is named by its home and heap address: "B/66560". The marks
   are only witnesses for [Srpc_analysis.Race_lint]; they move no bytes,
   charge no time, and are skipped entirely when no trace is attached or
   no session is open (setup-time touches cannot race). *)
let datum_name (lp : Long_pointer.t) =
  Printf.sprintf "%s/%d"
    (Space_id.to_string lp.Long_pointer.origin)
    lp.Long_pointer.addr

let datum_of_addr t addr = Printf.sprintf "%s/%d" (Space_id.to_string t.id) addr

let note_access t ~datum akind =
  if Transport.traced t.transport then
    match Session.current t.session with
    | None -> ()
    | Some info ->
      Transport.mark t.transport ~src:(endpoint t)
        (Trace.Access { session = info.Session.id; datum; akind })

(* Provisional pointers are renamed when the allocation batch resolves,
   so marks under the provisional name would never pair up with the
   home-side marks under the real one; they are elided instead. *)
let note_datum t (lp : Long_pointer.t) akind =
  if lp.Long_pointer.addr > 0 then note_access t ~datum:(datum_name lp) akind

(* Concurrent admission: a cache entry belongs to the open sessions that
   touched it. Pins drive the session-scoped dirty-set filter and the
   session-scoped invalidation; in single-open mode nothing pins, so the
   cache behaves exactly as before. *)
let pin_entry t (e : Cache.entry) =
  if Session.concurrent_enabled t.session then
    match Session.current t.session with
    | Some info -> Cache.pin e ~session:info.Session.id
    | None -> ()

(* --- pointer swizzling (paper, section 3.2) --- *)

let swizzle t = function
  | None -> 0
  | Some (lp : Long_pointer.t) ->
    if Space_id.equal lp.origin t.id then lp.addr
    else (
      match Cache.find_by_lp t.cache lp with
      | Some e ->
        pin_entry t e;
        e.Cache.local_addr
      | None ->
        let e = Cache.allocate t.cache lp ~size:(sizeof t lp.ty) in
        pin_entry t e;
        Log.debug (fun m ->
            m "%a: swizzled %a -> 0x%x" Space_id.pp t.id Long_pointer.pp lp
              e.Cache.local_addr);
        e.Cache.local_addr)

let unswizzle t ~ty addr =
  if addr = 0 then None
  else if Cache.in_region t.cache addr then (
    match Cache.find_by_addr t.cache addr with
    | Some e -> Some e.Cache.lp
    | None -> raise (Invalid_pointer addr))
  else if in_heap t addr then Some (Long_pointer.make ~origin:t.id ~addr ~ty)
  else raise (Invalid_pointer addr)

let encode_ctx t =
  {
    Object_codec.enc_reg = t.registry;
    enc_arch = arch t;
    unswizzle = (fun ~ty w -> unswizzle t ~ty w);
  }

let decode_ctx t =
  {
    Object_codec.dec_reg = t.registry;
    dec_arch = arch t;
    swizzle = (fun lp -> swizzle t lp);
  }

(* --- data transfer (paper, sections 3.2-3.4) --- *)

let encode_item t ~(lp : Long_pointer.t) ~addr : Wire.item =
  let raw = Address_space.read_unchecked t.space ~addr ~len:(sizeof t lp.ty) in
  { lp; data = Object_codec.encode (encode_ctx t) ~ty:lp.ty raw }

(* --- delta coherency: copy directory and shadow bookkeeping --- *)

let delta_on t = t.strategy.Strategy.delta_coherency

let dir_table t addr =
  match Hashtbl.find_opt t.directory addr with
  | Some tbl -> tbl
  | None ->
    let tbl = Space_id.Table.create 4 in
    Hashtbl.add t.directory addr tbl;
    tbl

(* [peer]'s copy of our datum at [addr] is now byte-for-byte [image]. *)
let dir_record t ~peer ~addr image =
  (if Session.concurrent_enabled t.session then
     match Session.current t.session with
     | Some info -> Hashtbl.replace t.dir_owner addr info.Session.id
     | None -> ());
  Space_id.Table.replace (dir_table t addr) peer image

let dir_base t ~peer ~addr =
  match Hashtbl.find_opt t.directory addr with
  | None -> None
  | Some tbl -> Space_id.Table.find_opt tbl peer

(* [dst] received data copies this session (items installed, or deltas
   patched — either can swizzle foreign pointers into fresh cache
   slots there). The shared session metadata stands in for provenance
   piggybacked on the transfers; the ground's targeted invalidation
   reads it at close. The trace note is the witness SP007 orders
   against the close-time invalidations — emitted in every mode now
   that the plain closes record their sends too. *)
let record_copy t ~dst n =
  if n > 0 then
    match Session.current t.session with
    | None -> ()
    | Some info ->
      Session.record_casher t.session dst;
      Transport.note t.transport ~src:(endpoint t)
        ~dst:(Space_id.to_string dst) (Trace.Copy info.Session.id)

(* Wire sizes of the two write-back encodings for one datum, mirroring
   the XDR framing: a non-null long pointer is 20 bytes, opaques pad to
   4, each list costs a 4-byte count and each range an 8-byte header. *)
let padded4 n = (n + 3) land lnot 3
let item_wire_size data_len = 20 + 4 + padded4 data_len

let delta_wire_size ranges =
  List.fold_left
    (fun acc (_, bytes) -> acc + 8 + padded4 (String.length bytes))
    (20 + 4 + 4) ranges

(* Install a transferred datum. [kind] is its provenance: [`Writeback]
   items overwrite our copy and keep traveling with the thread of
   control; [`Eager] items are speculative closure extras; [`Demand]
   items answer an explicit fetch from this node. Provenance is what the
   access-pattern profile keys its outcome accounting on. [src] is the
   space the item arrived from, which the delta bookkeeping needs: a
   write-back landing home updates the sender's directory base, and a
   cache copy installed straight from its home space leaves both sides
   agreeing on the encoding (shadow synced). *)
let install_item t ~src ~kind (item : Wire.item) =
  let lp = item.Wire.lp in
  let dirty = kind = `Writeback in
  if Space_id.equal lp.origin t.id then begin
    (* The datum came home: apply it to the original location. When it
       arrived dirty mid-session it stays in the traveling modified set
       so later control transfers refresh other participants' caches. *)
    let raw = Object_codec.decode (decode_ctx t) ~ty:lp.ty item.Wire.data in
    Address_space.write_unchecked t.space ~addr:lp.addr raw;
    if dirty then begin
      note_datum t lp Trace.Acc_apply;
      Long_pointer.Table.replace t.traveling lp ();
      (* the sender's copy now agrees with this encoding: it is the base
         its next byte-range delta patches *)
      dir_record t ~peer:src ~addr:lp.addr item.Wire.data
    end
  end
  else begin
    let e =
      match Cache.find_by_lp t.cache lp with
      | Some e -> e
      | None -> Cache.allocate t.cache lp ~size:(sizeof t lp.ty)
    in
    pin_entry t e;
    let fresh = not e.Cache.present in
    if dirty || fresh then begin
      note_datum t lp Trace.Acc_install;
      let raw = Object_codec.decode (decode_ctx t) ~ty:lp.ty item.Wire.data in
      Address_space.write_unchecked t.space ~addr:e.Cache.local_addr raw;
      if dirty then e.Cache.dirty <- true;
      Cache.mark_present t.cache e;
      (* A copy installed straight from its home is an encoding both
         sides hold (usable as a delta base); via any other space the
         home may not know it, so the shadow goes stale and the next
         write-back falls back to the full item. *)
      Cache.bump_version e;
      if Space_id.equal src lp.origin then Cache.sync_shadow e item.Wire.data
    end;
    (* else: a clean copy we already hold; ours is authoritative *)
    if fresh then begin
      (match kind with
      | `Eager ->
        e.Cache.prefetched <- true;
        Stats.add_prefetched_bytes (Transport.stats t.transport) e.Cache.size
      | `Writeback | `Demand -> ());
      match t.policy with
      | None -> ()
      | Some pol -> (
        let profile = Srpc_policy.Engine.profile pol in
        match kind with
        | `Eager ->
          Srpc_policy.Profile.prefetched profile ~ty:lp.Long_pointer.ty
            ~bytes:e.Cache.size
        | `Demand ->
          Srpc_policy.Profile.demand_fetched profile ~ty:lp.Long_pointer.ty
            ~bytes:e.Cache.size
        | `Writeback -> ())
    end
  end

(* Apply a byte-range delta from [src] to one of our own data. The base
   is the per-(datum, src) image in the copy directory — NOT our current
   encoding: our own heap is unprotected, so we may have drifted since
   shipping, and patching [src]'s ranges onto the image [src] holds
   reconstructs exactly the full item [src] would have sent. The result
   is therefore bit-identical to the full-write-back protocol. Senders
   only emit a delta while their shadow is fresh, which implies the
   directory holds the matching base; a miss here means a protocol bug
   or a crash-purged directory, and must fail loudly. *)
let patch_ranges (d : Wire.delta) base =
  let buf = Bytes.of_string base in
  List.iter
    (fun (r : Wire.range) ->
      (* range bounds were validated against [base_len] at decode *)
      Bytes.blit_string r.Wire.bytes 0 buf r.Wire.off
        (String.length r.Wire.bytes))
    d.Wire.ranges;
  Bytes.to_string buf

(* A delta from [src] landing home: the base is the per-(datum, src)
   image in the copy directory — NOT our current encoding: our own heap
   is unprotected, so we may have drifted since shipping, and patching
   [src]'s ranges onto the image [src] holds reconstructs exactly the
   full item [src] would have sent. The result is therefore
   bit-identical to the full-write-back protocol. Senders only emit a
   delta while their shadow is fresh, which implies the directory holds
   the matching base; a miss here means a protocol bug or a
   crash-purged directory, and must fail loudly. *)
let apply_home_delta t ~src (d : Wire.delta) =
  let lp = d.Wire.dlp in
  let base =
    match dir_base t ~peer:src ~addr:lp.Long_pointer.addr with
    | Some base -> base
    | None ->
      raise
        (Remote_error
           (Format.asprintf "delta without a shipped base for %a"
              Long_pointer.pp lp))
  in
  if String.length base <> d.Wire.base_len then
    raise
      (Remote_error
         (Format.asprintf "stale delta base for %a: %d bytes, frame says %d"
            Long_pointer.pp lp (String.length base) d.Wire.base_len));
  let patched = patch_ranges d base in
  (* reconstructing the image is CPU-side byte crunching, not wire *)
  Transport.charge_cpu_bytes t.transport d.Wire.base_len;
  let raw =
    Object_codec.decode (decode_ctx t) ~ty:lp.Long_pointer.ty patched
  in
  Address_space.write_unchecked t.space ~addr:lp.Long_pointer.addr raw;
  note_datum t lp Trace.Acc_apply;
  Long_pointer.Table.replace t.traveling lp ();
  dir_record t ~peer:src ~addr:lp.Long_pointer.addr patched

(* A refresh delta: the home re-ships its own traveling datum to one of
   our cached copies as byte ranges over the last encoding both sides
   agreed on — our shadow bytes, which stay in lockstep with the home's
   directory row for us even while the freshness flag says the cache
   copy itself drifted (a third party may have overwritten it; the full
   protocol would overwrite it too, so patching the shadow is
   bit-identical). A missing entry or shadow can only mean we released
   the copy and our free has not reached the home yet; the full
   protocol would pointlessly resurrect the datum here, so the delta
   refresh of a dropped copy is skipped instead. *)
let apply_refresh_delta t (d : Wire.delta) =
  let lp = d.Wire.dlp in
  let entry = Cache.find_by_lp t.cache lp in
  let base = Option.bind entry Cache.shadow_image in
  match (entry, base) with
  | Some e, Some base ->
    if String.length base <> d.Wire.base_len then
      raise
        (Remote_error
           (Format.asprintf
              "refresh delta base for %a: %d bytes, frame says %d"
              Long_pointer.pp lp (String.length base) d.Wire.base_len));
    let patched = patch_ranges d base in
    Transport.charge_cpu_bytes t.transport d.Wire.base_len;
    let raw =
      Object_codec.decode (decode_ctx t) ~ty:lp.Long_pointer.ty patched
    in
    Address_space.write_unchecked t.space ~addr:e.Cache.local_addr raw;
    note_datum t lp Trace.Acc_install;
    (* same provenance as a full traveling write-back: the refreshed
       copy keeps traveling with the thread of control *)
    e.Cache.dirty <- true;
    Cache.mark_present t.cache e;
    Cache.bump_version e;
    Cache.sync_shadow e patched
  | _ ->
    Log.debug (fun m ->
        m "%a: refresh delta for dropped copy %a skipped" Space_id.pp t.id
          Long_pointer.pp lp)

let apply_delta t ~src (d : Wire.delta) =
  let lp = d.Wire.dlp in
  if Space_id.equal lp.Long_pointer.origin t.id then apply_home_delta t ~src d
  else if Space_id.equal lp.Long_pointer.origin src then
    apply_refresh_delta t d
  else
    raise
      (Remote_error
         (Format.asprintf "delta for third-party datum %a" Long_pointer.pp lp))

let shipped_set t peer =
  match Space_id.Table.find_opt t.shipped peer with
  | Some s -> s
  | None ->
    let s = Hashtbl.create 64 in
    Space_id.Table.add t.shipped peer s;
    s

(* Bounded transitive closure from [seeds], in the configured traversal
   order (paper, section 3.3). Seeds are shipped unconditionally when
   [forced_seeds]; extras stop at the closure budget. Data already
   shipped to [peer] in this session is traversed but not re-sent.

   With an adaptive policy installed the static byte budget is replaced
   by the controller's per-type budgets: each candidate datum is charged
   against the budget of its own type, an exhausted type is skipped
   (left for the lazy path) without stopping traversal of the others,
   and its children are not explored. An [Unbounded] strategy stays
   unbounded — the policy only retunes bounded shipping. *)
let ship_closure t ~peer ~forced_seeds ~seeds =
  let strategy = t.strategy in
  let shipped = shipped_set t peer in
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let total = ref 0 in
  let budget_exceeded = ref false in
  let per_type_budget =
    match t.policy with
    | Some pol when strategy.Strategy.budget <> Strategy.Unbounded ->
      Some (fun ty -> Srpc_policy.Engine.budget_for pol ~ty)
    | Some _ | None -> None
  in
  let total_by_ty : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let used_by_ty ty =
    Option.value ~default:0 (Hashtbl.find_opt total_by_ty ty)
  in
  let budget_allows ~ty ~extra =
    match per_type_budget with
    | None -> Strategy.budget_allows strategy ~total:!total ~extra
    | Some budget -> used_by_ty ty + extra <= budget ty
  in
  let queue = Queue.create () in
  let stack = ref [] in
  let push lp =
    match strategy.Strategy.order with
    | Strategy.Breadth_first -> Queue.add lp queue
    | Strategy.Depth_first -> stack := lp :: !stack
  in
  let pop () =
    match strategy.Strategy.order with
    | Strategy.Breadth_first -> Queue.take_opt queue
    | Strategy.Depth_first -> (
      match !stack with
      | [] -> None
      | lp :: rest ->
        stack := rest;
        Some lp)
  in
  let children raw ty =
    Hints.pointer_fields t.hints t.registry (arch t) ~ty
    |> List.filter_map (fun (off, target) ->
           let w = Mem.Codec.get_word (arch t) raw off in
           if w = 0 then None else unswizzle t ~ty:target w)
  in
  let visit ~forced (lp : Long_pointer.t) =
    if Space_id.equal lp.origin t.id && not (Hashtbl.mem visited lp.addr) then begin
      Hashtbl.add visited lp.addr ();
      let size = sizeof t lp.ty in
      let raw () = Address_space.read_unchecked t.space ~addr:lp.addr ~len:size in
      if Hashtbl.mem shipped lp.addr && not forced then
        (* peer caches it already; traverse through without re-sending *)
        List.iter push (children (raw ()) lp.ty)
      else if forced || budget_allows ~ty:lp.ty ~extra:size then begin
        total := !total + size;
        Hashtbl.replace total_by_ty lp.ty (used_by_ty lp.ty + size);
        let raw = raw () in
        let data = Object_codec.encode (encode_ctx t) ~ty:lp.ty raw in
        out := { Wire.lp; data } :: !out;
        Hashtbl.replace shipped lp.addr ();
        note_datum t lp Trace.Acc_serve;
        (* closure provenance feeds the copy directory: [peer] will hold
           exactly this encoding *)
        dir_record t ~peer ~addr:lp.addr data;
        List.iter push (children raw lp.ty)
      end
      else if Option.is_none per_type_budget then budget_exceeded := true
      (* per-type budgets: this datum stays lazy, other types continue *)
    end
  in
  List.iter (visit ~forced:forced_seeds) seeds;
  let rec drain () =
    if not !budget_exceeded then
      match pop () with
      | None -> ()
      | Some lp ->
        visit ~forced:false lp;
        drain ()
  in
  drain ();
  List.rev !out

let serve_fetch t ~peer wanted =
  List.iter
    (fun (lp : Long_pointer.t) ->
      if not (Space_id.equal lp.origin t.id) then
        invalid_arg
          (Format.asprintf "Fetch for foreign datum %a" Long_pointer.pp lp);
      (* a long pointer into our heap whose block has been released is a
         stale reference: answer with a typed error instead of shipping
         whatever bytes the allocator left behind *)
      if in_heap t lp.Long_pointer.addr
         && not (Allocator.is_allocated t.heap lp.Long_pointer.addr)
      then
        raise
          (Remote_error
             (Format.asprintf "dangling fetch: %a was freed" Long_pointer.pp lp)))
    wanted;
  ship_closure t ~peer ~forced_seeds:true ~seeds:wanted

(* --- remote allocation batching (paper, section 3.5) --- *)

let group_by_space key xs =
  let tbl = Space_id.Table.create 4 in
  List.iter
    (fun x ->
      let k = key x in
      match Space_id.Table.find_opt tbl k with
      | Some r -> r := x :: !r
      | None -> Space_id.Table.add tbl k (ref [ x ]))
    xs;
  Space_id.Table.fold (fun k r acc -> (k, List.rev !r) :: acc) tbl []

let session_id t = (Session.current_exn t.session).Session.id
let faulty t = Option.is_some (Transport.fault_plan t.transport)

(* Marker prefix preserved across nesting levels so the ground thread can
   tell a dead participant apart from an ordinary remote exception. *)
let unreachable_prefix = "peer-unreachable: "

let is_unreachable_msg msg =
  String.length msg >= String.length unreachable_prefix
  && String.equal (String.sub msg 0 (String.length unreachable_prefix))
       unreachable_prefix

(* Forget everything tied to the current (or a stale) session: cached
   foreign data, shipped/traveling bookkeeping, staged write-backs and
   unflushed batched operations. Used by session abort and by the lazy
   cleanup when a node that missed an invalidation is contacted again. *)
let hard_reset t =
  note_access t ~datum:"*" Trace.Acc_drop;
  Cache.invalidate t.cache;
  Space_id.Table.reset t.shipped;
  Long_pointer.Table.reset t.traveling;
  Hashtbl.reset t.staged;
  Hashtbl.reset t.directory;
  t.pending_allocs <- [];
  t.pending_frees <- [];
  t.state_session <- None

(* --- concurrent admission: per-session state focus --- *)

(* Point the swappable per-session fields at [sid]'s state. Sessions
   interleave only at operation granularity — the simulated cluster is
   single-threaded, and every frame is handled to completion before
   another session's frame can arrive — so swapping at each focus
   switch is sound. The shared session registry's focus is re-asserted
   unconditionally: another node of the cluster may have moved it since
   this node last ran. *)
let focus_node t sid =
  if Session.concurrent_enabled t.session then begin
    if t.focused <> Some sid then begin
      (match t.focused with
      | Some old ->
        Hashtbl.replace t.sstash old
          {
            sv_shipped = t.shipped;
            sv_traveling = t.traveling;
            sv_allocs = t.pending_allocs;
            sv_frees = t.pending_frees;
          }
      | None -> ());
      (match Hashtbl.find_opt t.sstash sid with
      | Some sv ->
        Hashtbl.remove t.sstash sid;
        t.shipped <- sv.sv_shipped;
        t.traveling <- sv.sv_traveling;
        t.pending_allocs <- sv.sv_allocs;
        t.pending_frees <- sv.sv_frees
      | None ->
        t.shipped <- Space_id.Table.create 4;
        t.traveling <- Long_pointer.Table.create 16;
        t.pending_allocs <- [];
        t.pending_frees <- []);
      t.focused <- Some sid;
      (* fault handling is page-grained: [sid]'s cache entries must not
         share pages with another session's (see {!Cache.set_scope}) *)
      Cache.set_scope t.cache (Some sid)
    end;
    Session.focus t.session sid
  end

(* Re-align the shared registry's focus with this node's own focused
   session before a ground-side operation: between two of this ground's
   operations, another ground's activity may have moved the focus. *)
let refocus t =
  if Session.concurrent_enabled t.session then
    match t.focused with
    | Some sid when Session.find t.session sid <> None ->
      Session.focus t.session sid
    | Some _ | None -> ()

(* Session-scoped purge (concurrent admission): drop exactly [sid]'s
   state at this node — its pinned cache entries (per-datum drop marks;
   a wildcard drop would erase other open sessions' access history in
   the race checker), its swapped runtime state, its staged write-backs
   and its copy-directory rows — leaving every other open session
   untouched. *)
let purge_session t sid =
  focus_node t sid;
  Cache.iter_entries t.cache (fun e ->
      if Cache.pinned_by e ~session:sid then note_datum t e.Cache.lp Trace.Acc_drop);
  Cache.invalidate_session t.cache ~session:sid;
  Space_id.Table.reset t.shipped;
  Long_pointer.Table.reset t.traveling;
  t.pending_allocs <- [];
  t.pending_frees <- [];
  Hashtbl.remove t.staged sid;
  let owned =
    Hashtbl.fold
      (fun addr owner acc -> if owner = sid then addr :: acc else acc)
      t.dir_owner []
  in
  List.iter
    (fun addr ->
      Hashtbl.remove t.directory addr;
      Hashtbl.remove t.dir_owner addr)
    owned;
  Hashtbl.remove t.sstash sid;
  t.focused <- None

let request t ~dst req =
  let dst_ep = Space_id.to_string dst in
  match Transport.fault_plan t.transport with
  | None ->
    let reply =
      Transport.rpc t.transport ~src:(endpoint t) ~dst:dst_ep
        (Wire.encode_request ~reg:t.registry req)
    in
    Wire.decode_response ~reg:t.registry reply
  | Some _ ->
    t.seq <- t.seq + 1;
    let frame = Wire.encode_framed ~reg:t.registry ~seq:t.seq req in
    let stats = Transport.stats t.transport in
    let clock = Transport.clock t.transport in
    let rec attempt n backoff =
      match Transport.rpc t.transport ~src:(endpoint t) ~dst:dst_ep frame with
      | reply -> Wire.decode_response ~reg:t.registry reply
      | exception Transport.Peer_crashed ep -> raise (Peer_unreachable ep)
      | exception Transport.Timeout _ ->
        if n >= t.retry.max_attempts then raise (Peer_unreachable dst_ep)
        else begin
          Stats.incr_retries stats;
          Clock.advance clock backoff;
          attempt (n + 1) (Float.min (backoff *. 2.0) t.retry.max_backoff)
        end
    in
    attempt 1 t.retry.base_backoff

let expect_ack = function
  | Wire.Ack -> ()
  | Wire.Error msg -> raise (Remote_error msg)
  | Wire.Return _ | Wire.Fetched _ | Wire.Allocated _ | Wire.Return_d _
  | Wire.Hb_ack | Wire.Offload_return _ ->
    failwith "protocol error: expected Ack"

(* Crash-safe session abort (ground only): discard the modified data set
   instead of writing it back, tell every reachable participant to drop
   session state, close the session, and surface [Session_aborted]. The
   trace carries the abort mark and the invalidation mark but no
   write-back mark — the SP005 witness that nothing was committed. *)
let abort_session t ~reason : 'a =
  let info = Session.current_exn t.session in
  let sid = info.Session.id in
  Log.warn (fun m ->
      m "%a: aborting session #%d (%s)" Space_id.pp t.id sid reason);
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_abort sid);
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate sid);
  let others = Space_id.Set.remove t.id info.Session.participants in
  Space_id.Set.iter
    (fun peer ->
      try expect_ack (request t ~dst:peer (Wire.Abort { session = sid }))
      with Peer_unreachable _ ->
        (* the dead peer purges its own leftovers on next contact *)
        ())
    others;
  if Session.concurrent_enabled t.session then purge_session t sid
  else hard_reset t;
  Session.close t.session;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_end sid);
  raise (Session.Session_aborted { session = sid; reason })

let peer_failure t exn : 'a =
  match Session.current t.session with
  | Some info when Space_id.equal info.Session.ground t.id ->
    let reason =
      match exn with
      | Peer_unreachable ep -> unreachable_prefix ^ ep
      | Remote_error msg -> msg
      | e -> Printexc.to_string e
    in
    abort_session t ~reason
  | Some _ | None -> raise exn

(* Wrap a protocol step that may discover a dead participant. On the
   ground thread that is a session abort; elsewhere the failure
   propagates (and travels back to the ground as a marked remote
   error). No-op without a fault plan. *)
let ground_guard t f =
  if not (faulty t) then f ()
  else
    try f () with
    | Peer_unreachable _ as e -> peer_failure t e
    | Remote_error msg as e when is_unreachable_msg msg -> peer_failure t e

let flush_remote_ops t =
  if t.pending_allocs <> [] then begin
    let batches =
      group_by_space (fun pa -> pa.prov.Long_pointer.origin) t.pending_allocs
    in
    t.pending_allocs <- [];
    List.iter
      (fun (home, pas) ->
        let reqs =
          List.map
            (fun pa -> (pa.prov.Long_pointer.addr, pa.prov.Long_pointer.ty))
            pas
        in
        match request t ~dst:home (Wire.Alloc_batch { session = session_id t; reqs })
        with
        | Wire.Allocated { addrs } ->
          List.iter
            (fun pa ->
              match List.assoc_opt pa.prov.Long_pointer.addr addrs with
              | Some real ->
                let lp =
                  Long_pointer.make ~origin:home ~addr:real
                    ~ty:pa.prov.Long_pointer.ty
                in
                Cache.rebind t.cache pa.pa_entry lp
              | None -> failwith "protocol error: allocation not answered")
            pas
        | Wire.Error msg -> raise (Remote_error msg)
        | Wire.Return _ | Wire.Fetched _ | Wire.Ack | Wire.Return_d _
        | Wire.Hb_ack | Wire.Offload_return _ ->
          failwith "protocol error: expected Allocated")
      batches
  end;
  if t.pending_frees <> [] then begin
    let batches = group_by_space (fun lp -> lp.Long_pointer.origin) t.pending_frees in
    t.pending_frees <- [];
    List.iter
      (fun (home, lps) ->
        expect_ack
          (request t ~dst:home (Wire.Free_batch { session = session_id t; lps })))
      batches
  end

(* --- coherency protocol (paper, section 3.4) --- *)

(* Test-only defect switch: when set, the first dirty cache entry of the
   next flush is silently not written back (its page is still cleaned,
   so the update is lost for good). Exists so srpc-check can prove it
   detects and shrinks real coherency bugs; never set it in production
   code. *)
let chaos_lose_first_writeback = ref false

(* Test-only defect switch: when set, an incoming [Invalidate] updates
   the session bookkeeping (so the lazy purge never kicks in) but leaves
   every cached copy, shipped set and directory row in place — the
   observable effect of an invalidation racing ahead of the state it was
   supposed to clear. Exists so srpc-check can prove the happens-before
   checker catches stale reads; never set it in production code. *)
let chaos_reorder_invalidate = ref false

(* Concurrent admission: the focused session's id, as the filter for the
   session-scoped dirty set and flush. [None] in single-open mode, where
   the cache-wide behavior is unchanged. *)
let focused_pin t =
  if Session.concurrent_enabled t.session then
    Option.map (fun (i : Session.info) -> i.Session.id) (Session.current t.session)
  else None

(* Drain the dirty entries, charging the twin-diff CPU cost and applying
   the chaos defect switch — shared by the plain and delta collectors. *)
let take_dirty_entries t =
  let entries = Cache.dirty_entries ?pinned_by:(focused_pin t) t.cache in
  if t.strategy.Strategy.grain = Strategy.Twin_diff then begin
    let psz = Address_space.page_size t.space in
    Transport.charge_cpu_bytes t.transport
      (List.length (Cache.dirty_pages t.cache) * psz)
  end;
  match entries with
  | _ :: rest when !chaos_lose_first_writeback -> rest
  | entries -> entries

let collect_writebacks t =
  let stats = Transport.stats t.transport in
  let cached_items =
    List.map
      (fun (e : Cache.entry) -> encode_item t ~lp:e.lp ~addr:e.local_addr)
      (take_dirty_entries t)
  in
  (* Own data modified elsewhere this session keeps traveling,
     re-encoded from the (authoritative) original. *)
  let traveling_items =
    Long_pointer.Table.fold
      (fun lp () acc -> encode_item t ~lp ~addr:lp.Long_pointer.addr :: acc)
      t.traveling []
  in
  let items = cached_items @ traveling_items in
  Stats.add_writebacks stats (List.length items);
  List.iter
    (fun (i : Wire.item) ->
      Stats.add_writeback_bytes stats (item_wire_size (String.length i.data)))
    items;
  Cache.clean_after_flush ?pinned_by:(focused_pin t) t.cache;
  items

(* Encode one dirty entry for transfer to its home: [Some delta] when
   the shadow is usable as a base and the ranges beat the full item,
   [None] to fall back to the full item. The fallback cases — stale or
   missing shadow, length change (a pointer flipped nullness), or a
   delta that would not be smaller — are exactly the ones the stats
   counter reports. *)
let delta_for t (e : Cache.entry) (item : Wire.item) =
  let stats = Transport.stats t.transport in
  let data = item.Wire.data in
  let full_size = item_wire_size (String.length data) in
  match Cache.shadow_base e with
  | Some base when String.length base = String.length data ->
    (* the byte scan is CPU-side, like a twin diff *)
    Transport.charge_cpu_bytes t.transport (String.length data);
    let ranges = Cache.diff_ranges ~base ~now:data in
    let dsize = delta_wire_size ranges in
    if dsize < full_size then begin
      Stats.add_delta_bytes_saved stats (full_size - dsize);
      Stats.add_writeback_bytes stats dsize;
      Some
        {
          Wire.dlp = e.Cache.lp;
          base_len = String.length base;
          ranges =
            List.map (fun (off, bytes) -> { Wire.off; bytes }) ranges;
        }
    end
    else begin
      Stats.incr_full_fallbacks stats;
      None
    end
  | Some _ | None ->
    Stats.incr_full_fallbacks stats;
    None

(* Delta-mode modified data set for a control transfer to [dst]: entries
   homed at [dst] ship as byte-range deltas when possible, everything
   else (third-party data continuing to snowball, fallbacks, traveling
   own data) ships as full items. *)
let collect_writebacks_delta t ~dst =
  let stats = Transport.stats t.transport in
  let full = ref [] in
  let deltas = ref [] in
  List.iter
    (fun (e : Cache.entry) ->
      let item = encode_item t ~lp:e.Cache.lp ~addr:e.Cache.local_addr in
      let ship_full () =
        Stats.add_writeback_bytes stats
          (item_wire_size (String.length item.Wire.data));
        full := item :: !full
      in
      if Space_id.equal e.Cache.lp.Long_pointer.origin dst then begin
        (match delta_for t e item with
        | Some d -> deltas := d :: !deltas
        | None -> ship_full ());
        (* either way [dst] (the home) now holds this encoding *)
        Cache.sync_shadow e item.Wire.data
      end
      else ship_full ())
    (take_dirty_entries t);
  Long_pointer.Table.iter
    (fun lp () ->
        let item = encode_item t ~lp ~addr:lp.Long_pointer.addr in
        let data = item.Wire.data in
        let full_size = item_wire_size (String.length data) in
        (* We are this datum's home: the directory row for [dst] is the
           copy [dst] holds, so the refresh can travel as byte ranges
           over it instead of the full item. *)
        let refresh =
          match dir_base t ~peer:dst ~addr:lp.Long_pointer.addr with
          | Some base when String.length base = String.length data ->
            Transport.charge_cpu_bytes t.transport (String.length data);
            let ranges = Cache.diff_ranges ~base ~now:data in
            let dsize = delta_wire_size ranges in
            if dsize < full_size then begin
              Stats.add_delta_bytes_saved stats (full_size - dsize);
              Stats.add_writeback_bytes stats dsize;
              Some
                {
                  Wire.dlp = lp;
                  base_len = String.length base;
                  ranges =
                    List.map (fun (off, bytes) -> { Wire.off; bytes }) ranges;
                }
            end
            else begin
              Stats.incr_full_fallbacks stats;
              None
            end
          | Some _ ->
            Stats.incr_full_fallbacks stats;
            None
          | None -> None
        in
        (* either way [dst] holds this encoding afterwards *)
        dir_record t ~peer:dst ~addr:lp.Long_pointer.addr data;
        match refresh with
        | Some d -> deltas := d :: !deltas
        | None ->
          Stats.add_writeback_bytes stats full_size;
          full := item :: !full)
    t.traveling;
  let full = List.rev !full in
  let deltas = List.rev !deltas in
  Stats.add_writebacks stats (List.length full + List.length deltas);
  Cache.clean_after_flush ?pinned_by:(focused_pin t) t.cache;
  (full, deltas)

(* Delta-mode session close: the dirty foreign entries grouped by their
   origin, each group encoded against that origin (deltas where the
   shadow allows, full items otherwise). Traveling own data is already
   applied to our originals and ships nowhere at close. *)
let collect_close_batches_delta t =
  let stats = Transport.stats t.transport in
  let foreign =
    List.filter
      (fun (e : Cache.entry) ->
        not (Space_id.equal e.Cache.lp.Long_pointer.origin t.id))
      (take_dirty_entries t)
  in
  let n = ref 0 in
  let batches =
    group_by_space (fun (e : Cache.entry) -> e.Cache.lp.Long_pointer.origin)
      foreign
    |> List.map (fun (origin, entries) ->
           let full = ref [] in
           let deltas = ref [] in
           List.iter
             (fun (e : Cache.entry) ->
               let item =
                 encode_item t ~lp:e.Cache.lp ~addr:e.Cache.local_addr
               in
               (match delta_for t e item with
               | Some d -> deltas := d :: !deltas
               | None ->
                 Stats.add_writeback_bytes stats
                   (item_wire_size (String.length item.Wire.data));
                 full := item :: !full);
               incr n;
               Cache.sync_shadow e item.Wire.data)
             entries;
           (origin, (List.rev !full, List.rev !deltas)))
  in
  Stats.add_writebacks stats !n;
  Cache.clean_after_flush ?pinned_by:(focused_pin t) t.cache;
  batches

(* --- marshaling of argument values --- *)

let wire_of_value t = function
  | Value.Unit -> Wire.WUnit
  | Value.Bool b -> Wire.WBool b
  | Value.Int n -> Wire.WInt n
  | Value.Float f -> Wire.WFloat f
  | Value.Str s -> Wire.WStr s
  | Value.Ptr { addr; ty } -> Wire.WPtr (unswizzle t ~ty addr)
  | Value.Fun f -> Wire.WFun f

let value_of_wire t = function
  | Wire.WUnit -> Value.Unit
  | Wire.WBool b -> Value.Bool b
  | Wire.WInt n -> Value.Int n
  | Wire.WFloat f -> Value.Float f
  | Wire.WStr s -> Value.Str s
  | Wire.WPtr None -> Value.Ptr { addr = 0; ty = "" }
  | Wire.WPtr (Some lp) ->
    Value.Ptr { addr = swizzle t (Some lp); ty = lp.Long_pointer.ty }
  | Wire.WFun f -> Value.Fun f

(* With an unbounded budget the whole closure travels with the pointer —
   the fully eager method. Bounded budgets ship at fault time instead,
   as in the paper's experiments (section 4.1). *)
let eager_for t ~peer wvalues =
  match t.strategy.Strategy.budget with
  | Strategy.Bytes _ -> []
  | Strategy.Unbounded ->
    let seeds =
      List.filter_map
        (function
          | Wire.WPtr (Some lp) when Space_id.equal lp.Long_pointer.origin t.id ->
            Some lp
          | Wire.WPtr _ | Wire.WUnit | Wire.WBool _ | Wire.WInt _ | Wire.WFloat _
          | Wire.WStr _ | Wire.WFun _ ->
            None)
        wvalues
    in
    ship_closure t ~peer ~forced_seeds:false ~seeds

(* --- the RPC itself --- *)

(* Apply a batch of releases for our own heap (the [Free_batch] body,
   also ridden by delta-coherency frames). *)
let apply_frees t lps =
  List.iter
    (fun (lp : Long_pointer.t) ->
      if not (Space_id.equal lp.origin t.id) then
        invalid_arg "Free_batch: foreign datum";
      (* a dead datum must stop traveling, and its directory row would
         otherwise invite a refresh delta to a space that dropped it *)
      note_datum t lp Trace.Acc_free;
      Long_pointer.Table.remove t.traveling lp;
      Hashtbl.remove t.directory lp.addr;
      Allocator.free t.heap lp.addr)
    lps

let call_plain t (info : Session.info) ~dst proc args =
  flush_remote_ops t;
  let writebacks = collect_writebacks t in
  let wargs = List.map (wire_of_value t) args in
  let eager = eager_for t ~peer:dst wargs in
  record_copy t ~dst (List.length writebacks + List.length eager);
  Log.debug (fun m ->
      m "%a -> %a: call %s (%d wb, %d eager)" Space_id.pp t.id Space_id.pp dst
        proc (List.length writebacks) (List.length eager));
  match
    request t ~dst
      (Wire.Call { session = info.Session.id; proc; args = wargs; writebacks; eager })
  with
  | Wire.Return { results; writebacks; eager } ->
    List.iter (install_item t ~src:dst ~kind:`Writeback) writebacks;
    List.iter (install_item t ~src:dst ~kind:`Eager) eager;
    List.map (value_of_wire t) results
  | Wire.Error msg -> raise (Remote_error msg)
  | Wire.Fetched _ | Wire.Allocated _ | Wire.Ack | Wire.Return_d _
  | Wire.Hb_ack | Wire.Offload_return _ ->
    failwith "protocol error: bad reply to Call"

(* The delta-coherency control transfer: coherency traffic for [dst] is
   batched into the call frame itself — write-back deltas and the
   pending frees homed at [dst] ride along; frees for other spaces still
   flush as their own batches. Pending allocations cannot coalesce:
   their provisional pointers must be resolved by the [Alloc_batch]
   round trip before any datum referencing them is encoded, so the
   flush below still runs first. *)
let call_delta t (info : Session.info) ~dst proc args =
  let my_frees, other_frees =
    List.partition
      (fun (lp : Long_pointer.t) -> Space_id.equal lp.origin dst)
      t.pending_frees
  in
  t.pending_frees <- other_frees;
  flush_remote_ops t;
  let writebacks, wb_deltas = collect_writebacks_delta t ~dst in
  let wargs = List.map (wire_of_value t) args in
  let eager = eager_for t ~peer:dst wargs in
  record_copy t ~dst
    (List.length writebacks + List.length wb_deltas + List.length eager);
  Log.debug (fun m ->
      m "%a -> %a: call-d %s (%d wb, %d deltas, %d eager, %d frees)"
        Space_id.pp t.id Space_id.pp dst proc (List.length writebacks)
        (List.length wb_deltas) (List.length eager) (List.length my_frees));
  match
    request t ~dst
      (Wire.Call_d
         {
           session = info.Session.id;
           proc;
           args = wargs;
           writebacks;
           wb_deltas;
           eager;
           frees = my_frees;
         })
  with
  | Wire.Return_d { results; writebacks; wb_deltas; eager; frees } ->
    apply_frees t frees;
    List.iter (install_item t ~src:dst ~kind:`Writeback) writebacks;
    List.iter (apply_delta t ~src:dst) wb_deltas;
    List.iter (install_item t ~src:dst ~kind:`Eager) eager;
    List.map (value_of_wire t) results
  | Wire.Error msg -> raise (Remote_error msg)
  | Wire.Return _ | Wire.Fetched _ | Wire.Allocated _ | Wire.Ack
  | Wire.Hb_ack | Wire.Offload_return _ ->
    failwith "protocol error: bad reply to Call_d"

let call t ~dst proc args =
  refocus t;
  let info = Session.current_exn t.session in
  if Space_id.equal dst t.id then invalid_arg "Node.call: dst is self";
  ground_guard t @@ fun () ->
  if delta_on t then call_delta t info ~dst proc args
  else call_plain t info ~dst proc args

(* --- fault handling: the lazy path (paper, section 3.2) --- *)

let fetch_missing t missing =
  let batches =
    group_by_space (fun (e : Cache.entry) -> e.lp.Long_pointer.origin) missing
  in
  let clock = Transport.clock t.transport in
  List.iter
    (fun (origin, entries) ->
      Stats.incr_callbacks (Transport.stats t.transport);
      let wanted = List.map (fun (e : Cache.entry) -> e.Cache.lp) entries in
      let t0 = Clock.now clock in
      match request t ~dst:origin (Wire.Fetch { session = session_id t; wanted })
      with
      | Wire.Fetched { items } ->
        (* Items we asked for are demand fetches; anything extra in the
           same reply is the server's speculative closure around them. *)
        List.iter
          (fun (item : Wire.item) ->
            let kind =
              if List.exists (Long_pointer.equal item.Wire.lp) wanted then `Demand
              else `Eager
            in
            install_item t ~src:origin ~kind item)
          items;
        (* The clock advance across this synchronous round trip is
           exactly how long the faulting thread was stopped. *)
        let stall = Clock.now clock -. t0 in
        Stats.add_stall_ns (Transport.stats t.transport)
          (int_of_float (stall *. 1e9));
        (match t.policy with
        | None -> ()
        | Some pol ->
          (* The profile gets only the avoidable part of the stall: the
             fixed round-trip and fault overheads. The demanded bytes
             cost the same wire and conversion time whether they ship
             eagerly or lazily, so pricing them as stall would push the
             controller toward eager-sized budgets whose waste it can
             never recoup. *)
          let c =
            Transport.link_cost t.transport ~src:(endpoint t)
              ~dst:(Space_id.to_string origin)
          in
          let overhead =
            (2.0 *. c.Cost_model.message_latency) +. c.Cost_model.fault_overhead
          in
          let profile = Srpc_policy.Engine.profile pol in
          let share = overhead /. float_of_int (List.length entries) in
          List.iter
            (fun (e : Cache.entry) ->
              Srpc_policy.Profile.stall profile ~ty:e.Cache.lp.Long_pointer.ty
                ~seconds:share)
            entries)
      | Wire.Error msg -> raise (Remote_error msg)
      | Wire.Return _ | Wire.Allocated _ | Wire.Ack | Wire.Return_d _
      | Wire.Hb_ack | Wire.Offload_return _ ->
        failwith "protocol error: bad reply to Fetch")
    batches

let handle_fault t (fault : Address_space.fault) =
  refocus t;
  ground_guard t @@ fun () ->
  Transport.charge_fault t.transport;
  let page = fault.page in
  if not (Cache.in_region t.cache (Address_space.page_base t.space page)) then
    failwith (Format.asprintf "unserviceable %a" Address_space.pp_fault fault);
  let entries = Cache.entries_on_page t.cache page in
  if entries = [] then
    failwith (Format.asprintf "%a on empty cache page" Address_space.pp_fault fault);
  (* Decoding fetched data swizzles its pointers, which can allocate
     fresh (absent) slots on this very page; the access protection can
     only be released once no datum on the page is missing (paper,
     section 3.2), so iterate until the page is fully present. *)
  let rec resolve_missing () =
    let missing =
      List.filter
        (fun (e : Cache.entry) -> not e.Cache.present)
        (Cache.entries_on_page t.cache page)
    in
    if missing <> [] then begin
      Log.debug (fun m ->
          m "%a: fault page %d, fetching %d data" Space_id.pp t.id page
            (List.length missing));
      fetch_missing t missing;
      resolve_missing ()
    end
  in
  let had_missing = List.exists (fun e -> not e.Cache.present) entries in
  resolve_missing ();
  if had_missing then Cache.refresh_protection t.cache ~page
  else
    match fault.access with
    | Address_space.Write ->
      if t.strategy.Strategy.grain = Strategy.Twin_diff then
        Transport.charge_cpu_bytes t.transport (Address_space.page_size t.space);
      Cache.mark_page_dirty t.cache ~page
    | Address_space.Read -> Cache.refresh_protection t.cache ~page

(* --- traversal offloading (docs/OFFLOAD.md) --- *)

let charge_touch ?addr ?(write = false) t =
  refocus t;
  Transport.charge_local_touches t.transport 1;
  match addr with
  | None -> ()
  | Some a ->
    if Cache.in_region t.cache a then (
      match Cache.find_containing t.cache a with
      | Some e ->
        e.Cache.touched <- true;
        note_datum t e.Cache.lp
          (if write then Trace.Acc_write else Trace.Acc_read)
      | None -> ())
    else if in_heap t a && Transport.traced t.transport then
      (* interior addresses need the O(live) scan; only pay it when a
         trace is actually collecting witnesses *)
      match Allocator.find_containing t.heap a with
      | Some (base, _) ->
        note_access t ~datum:(datum_of_addr t base)
          (if write then Trace.Acc_write else Trace.Acc_read)
      | None -> ()

(* The plan walker's memory closure over this node's program path: every
   access charges one local touch with its race-checker witness, exactly
   like the Access layer, and loads go through the MMU — so a plan run
   client-side faults over the cache and pays the honest lazy cost the
   strategy comparison needs, while the home walks its own (unprotected)
   heap for free. *)
let walker_mem t : Offload.mem =
  let open Type_desc in
  let load p addr =
    charge_touch ~addr t;
    match p with
    | I8 -> Mem.load_i8 t.mmu ~addr
    | I16 -> Mem.load_i16 t.mmu ~addr
    | I32 -> Int32.to_int (Mem.load_i32 t.mmu ~addr)
    | I64 -> Int64.to_int (Mem.load_i64 t.mmu ~addr)
    | F32 -> int_of_float (Mem.load_f32 t.mmu ~addr)
    | F64 -> int_of_float (Mem.load_f64 t.mmu ~addr)
  in
  let store p addr v =
    (* a store of the value already there is witnessed as a read, like
       the Access layer: it produces no twin diff, so it never travels
       and must not create a write obligation for the race checker *)
    let unchanged =
      match p with
      | I8 -> Mem.load_i8 t.mmu ~addr = v
      | I16 -> Mem.load_i16 t.mmu ~addr = v
      | I32 -> Mem.load_i32 t.mmu ~addr = Int32.of_int v
      | I64 -> Mem.load_i64 t.mmu ~addr = Int64.of_int v
      | F32 -> Mem.load_f32 t.mmu ~addr = float_of_int v
      | F64 -> Mem.load_f64 t.mmu ~addr = float_of_int v
    in
    charge_touch ~addr ~write:(not unchanged) t;
    match p with
    | I8 -> Mem.store_i8 t.mmu ~addr v
    | I16 -> Mem.store_i16 t.mmu ~addr v
    | I32 -> Mem.store_i32 t.mmu ~addr (Int32.of_int v)
    | I64 -> Mem.store_i64 t.mmu ~addr (Int64.of_int v)
    | F32 -> Mem.store_f32 t.mmu ~addr (float_of_int v)
    | F64 -> Mem.store_f64 t.mmu ~addr (float_of_int v)
  in
  {
    Offload.w_arch = arch t;
    w_reg = t.registry;
    w_load_word =
      (fun addr ->
        charge_touch ~addr t;
        Mem.load_word t.mmu ~addr);
    w_load = load;
    w_store = store;
  }

let offload_local t plan ~root =
  (Offload.run (walker_mem t) plan ~root).Offload.results

let offload_remote t (info : Session.info) ~dst ~(root : Long_pointer.t) plan =
  (* the session's footprint witness on the targeted space precedes the
     frame — rule SP010 orders the offload-call against it *)
  note_datum t root Trace.Acc_read;
  flush_remote_ops t;
  let writebacks = collect_writebacks t in
  record_copy t ~dst (List.length writebacks);
  Stats.incr_offload_calls (Transport.stats t.transport);
  Log.debug (fun m ->
      m "%a -> %a: offload %a (%d wb)" Space_id.pp t.id Space_id.pp dst
        Offload.pp_plan plan (List.length writebacks));
  match
    request t ~dst
      (Wire.Offload_call { session = info.Session.id; root; plan; writebacks })
  with
  | Wire.Offload_return { results; writebacks; wset = _ } ->
    (* the write set rides in [writebacks] too (the home keeps mutated
       data traveling), so installing them refreshes our copies *)
    List.iter (install_item t ~src:dst ~kind:`Writeback) writebacks;
    results
  | Wire.Error msg -> raise (Remote_error msg)
  | Wire.Return _ | Wire.Fetched _ | Wire.Allocated _ | Wire.Ack
  | Wire.Return_d _ | Wire.Hb_ack ->
    failwith "protocol error: bad reply to Offload_call"

(* Run a traversal plan rooted at the (ordinary, possibly swizzled)
   address [root]. Where it runs is the strategy's third per-call-site
   mode: client-side over the cache (identical wire behavior to not
   having the feature), at the root's home ([Offload_always], foreign
   roots only), or wherever the adaptive controller's per-root-type
   learner currently believes is cheaper ([Offload_auto]). *)
let offload t ~root plan =
  refocus t;
  let info = Session.current_exn t.session in
  (* a locally-run plan meets the same typed validation a decoded frame
     would, so the two arms reject identically *)
  Offload.validate ~reg:t.registry plan;
  ground_guard t @@ fun () ->
  match unswizzle t ~ty:plan.Offload.root_ty root with
  | None -> offload_local t plan ~root
  | Some lp when Space_id.equal lp.Long_pointer.origin t.id ->
    offload_local t plan ~root
  | Some lp -> (
    let remote () =
      offload_remote t info ~dst:lp.Long_pointer.origin ~root:lp plan
    in
    match t.strategy.Strategy.offload with
    | Strategy.Offload_never -> offload_local t plan ~root
    | Strategy.Offload_always -> remote ()
    | Strategy.Offload_auto -> (
      match t.policy with
      | None -> remote ()
      | Some pol ->
        let ty = lp.Long_pointer.ty in
        let offloaded = Srpc_policy.Engine.choose_offload pol ~ty in
        let clock = Transport.clock t.transport in
        let t0 = Clock.now clock in
        let results =
          if offloaded then remote () else offload_local t plan ~root
        in
        Srpc_policy.Engine.offload_feedback pol ~ty ~offloaded
          ~seconds:(Clock.now clock -. t0);
        results))

(* --- outcome accounting for the adaptive policy --- *)

(* Close the session's book on the cache, just before invalidation:
   every prefetched datum either paid off (it was touched) or was pure
   waste, and each pointer field of a touched datum yields one edge
   observation — child still absent: a healthy skip; child prefetched:
   touched or wasted; child present otherwise: the program had to
   demand it. The controller turns these into budgets and hints. *)
let record_outcomes t =
  let stats = Transport.stats t.transport in
  Cache.iter_entries t.cache (fun e ->
      if e.Cache.present && e.Cache.prefetched && not e.Cache.touched then
        Stats.add_wasted_prefetch_bytes stats e.Cache.size);
  match t.policy with
  | None -> ()
  | Some pol ->
    let profile = Srpc_policy.Engine.profile pol in
    let arch = arch t in
    Cache.iter_entries t.cache (fun (e : Cache.entry) ->
        if e.Cache.present then begin
          let ty = e.Cache.lp.Long_pointer.ty in
          if e.Cache.prefetched then
            Srpc_policy.Profile.outcome profile ~ty ~bytes:e.Cache.size
              ~touched:e.Cache.touched;
          if e.Cache.touched then
            let fields =
              (Layout.of_type t.registry arch (Type_desc.Named ty)).Layout.fields
            in
            let raw =
              lazy
                (Address_space.read_unchecked t.space ~addr:e.Cache.local_addr
                   ~len:e.Cache.size)
            in
            List.iter
              (fun (f : Layout.field) ->
                List.iter
                  (fun (off, _target) ->
                    let w =
                      Mem.Codec.get_word arch (Lazy.force raw)
                        (f.Layout.offset + off)
                    in
                    if w <> 0 && Cache.in_region t.cache w then
                      match Cache.find_by_addr t.cache w with
                      | None -> ()
                      | Some child ->
                        let outcome : Srpc_policy.Profile.edge_outcome =
                          if not child.Cache.present then Avoided
                          else if child.Cache.prefetched then
                            if child.Cache.touched then Prefetched_touched
                            else Prefetched_wasted
                          else Demanded
                        in
                        Srpc_policy.Profile.edge profile ~ty
                          ~field:f.Layout.name ~outcome ~bytes:child.Cache.size)
                  (Layout.pointer_leaves t.registry arch f.Layout.ty))
              fields
        end)

(* --- dispatch of incoming frames --- *)

(* Every frame names its session; a frame from a session other than the
   active one is a protocol violation (e.g. a stale remote pointer used
   after its session ended) and must fail loudly. Under concurrent
   admission several sessions are open at once: the frame is instead
   demultiplexed onto its session's state — the wire-level session id is
   exactly the interleaving key. *)
let check_session t session =
  if Session.concurrent_enabled t.session then
    match Session.find t.session session with
    | Some _ -> focus_node t session
    | None ->
      failwith
        (Printf.sprintf "session mismatch: frame for #%d, which is not open"
           session)
  else
    let info = Session.current_exn t.session in
    if session <> info.Session.id then
      failwith
        (Printf.sprintf "session mismatch: frame for #%d, active #%d" session
           info.Session.id)

(* A node that was unreachable when its session's invalidation or abort
   went out still holds that session's cached state. The first frame of
   a newer session purges it before any processing — the lazy half of
   crash-safe reusability. *)
let ensure_fresh t session =
  (* Concurrent admission tracks per-session state explicitly (and runs
     without crash plans), so the single-session staleness heuristic
     does not apply. *)
  if not (Session.concurrent_enabled t.session) then begin
    (match t.state_session with
    | Some s when s <> session -> hard_reset t
    | Some _ | None -> ());
    t.state_session <- Some session
  end

(* Drop every piece of cached session state — the [Invalidate] body,
   shared with the invalidation ridden by a [Wb_delta] close frame. *)
let apply_invalidate t =
  if !chaos_reorder_invalidate then
    (* the defect: acknowledge the invalidation and advance the session
       bookkeeping without dropping anything — stale copies survive into
       the next session and the self-healing purge is disarmed *)
    t.state_session <- None
  else begin
    record_outcomes t;
    note_access t ~datum:"*" Trace.Acc_drop;
    Cache.invalidate t.cache;
    Space_id.Table.reset t.shipped;
    Long_pointer.Table.reset t.traveling;
    Hashtbl.reset t.staged;
    Hashtbl.reset t.directory;
    t.state_session <- None
  end

let handle t src req =
  match (req : Wire.request) with
  (* Liveness probes carry no session: answered before any session
     bookkeeping so a heartbeat neither disturbs nor depends on open
     sessions (and stays valid between them). *)
  | Wire.Hb -> Wire.Hb_ack
  | _ ->
  check_session t (Wire.request_session req);
  ensure_fresh t (Wire.request_session req);
  let peer () = Space_id.of_string src in
  match (req : Wire.request) with
  | Wire.Call { proc; args; writebacks; eager; session = _ } ->
    Session.join t.session t.id;
    let peer = peer () in
    List.iter (install_item t ~src:peer ~kind:`Writeback) writebacks;
    List.iter (install_item t ~src:peer ~kind:`Eager) eager;
    let body =
      match Hashtbl.find_opt t.procs proc with
      | Some f -> f
      | None -> raise (Unknown_procedure proc)
    in
    let vargs = List.map (value_of_wire t) args in
    let results = body t vargs in
    flush_remote_ops t;
    let wb = collect_writebacks t in
    let wres = List.map (wire_of_value t) results in
    let eager = eager_for t ~peer wres in
    record_copy t ~dst:peer (List.length wb + List.length eager);
    Wire.Return { results = wres; writebacks = wb; eager }
  | Wire.Call_d { proc; args; writebacks; wb_deltas; eager; frees; session = _ }
    ->
    Session.join t.session t.id;
    let peer = peer () in
    apply_frees t frees;
    List.iter (install_item t ~src:peer ~kind:`Writeback) writebacks;
    List.iter (apply_delta t ~src:peer) wb_deltas;
    List.iter (install_item t ~src:peer ~kind:`Eager) eager;
    let body =
      match Hashtbl.find_opt t.procs proc with
      | Some f -> f
      | None -> raise (Unknown_procedure proc)
    in
    let vargs = List.map (value_of_wire t) args in
    let results = body t vargs in
    (* the transfer back to the caller gets the same delta treatment,
       with the frees homed at the caller riding in the reply *)
    let my_frees, other_frees =
      List.partition
        (fun (lp : Long_pointer.t) -> Space_id.equal lp.origin peer)
        t.pending_frees
    in
    t.pending_frees <- other_frees;
    flush_remote_ops t;
    let wb, wb_deltas = collect_writebacks_delta t ~dst:peer in
    let wres = List.map (wire_of_value t) results in
    let eager = eager_for t ~peer wres in
    record_copy t ~dst:peer
      (List.length wb + List.length wb_deltas + List.length eager);
    Wire.Return_d
      { results = wres; writebacks = wb; wb_deltas; eager; frees = my_frees }
  | Wire.Fetch { wanted; session = _ } ->
    Session.join t.session t.id;
    let peer = peer () in
    let items = serve_fetch t ~peer wanted in
    record_copy t ~dst:peer (List.length items);
    Wire.Fetched { items }
  | Wire.Write_back { items; session = _ } ->
    (* installing write-backs can swizzle foreign pointers into fresh
       cache slots here, so this space must be invalidated too *)
    Session.join t.session t.id;
    List.iter (install_item t ~src:(peer ()) ~kind:`Writeback) items;
    Wire.Ack
  | Wire.Wb_delta { full; deltas; frees; invalidate; session } ->
    (* delta-coherency close frame: apply the per-destination batch —
       frees, full write-backs, byte-range deltas — then, if the
       targeted invalidation rides along, drop all session state *)
    Session.join t.session t.id;
    let peer = peer () in
    apply_frees t frees;
    List.iter (install_item t ~src:peer ~kind:`Writeback) full;
    List.iter (apply_delta t ~src:peer) deltas;
    if invalidate then
      if Session.concurrent_enabled t.session then purge_session t session
      else apply_invalidate t;
    Wire.Ack
  | Wire.Wb_stage { items; session } ->
    (* all-or-nothing close, phase one: hold the items without applying;
       a crash before commit leaves the originals untouched *)
    Session.join t.session t.id;
    let peer = peer () in
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.staged session) in
    Hashtbl.replace t.staged session
      (prev @ List.map (fun i -> S_full (peer, i)) items);
    Wire.Ack
  | Wire.Wb_stage_delta { deltas; session } ->
    Session.join t.session t.id;
    let peer = peer () in
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.staged session) in
    Hashtbl.replace t.staged session
      (prev @ List.map (fun d -> S_delta (peer, d)) deltas);
    Wire.Ack
  | Wire.Wb_commit { session } ->
    Session.join t.session t.id;
    (match Hashtbl.find_opt t.staged session with
    | Some staged ->
      Hashtbl.remove t.staged session;
      List.iter
        (function
          | S_full (peer, item) -> install_item t ~src:peer ~kind:`Writeback item
          | S_delta (peer, d) -> apply_delta t ~src:peer d)
        staged
    | None -> ());
    Wire.Ack
  | Wire.Abort { session } ->
    (* discard everything the session put here; nothing is applied *)
    if Session.concurrent_enabled t.session then purge_session t session
    else hard_reset t;
    Wire.Ack
  | Wire.Alloc_batch { reqs; session = _ } ->
    Session.join t.session t.id;
    let addrs =
      List.map
        (fun (prov, ty) ->
          let real = Allocator.alloc t.heap ~size:(sizeof t ty) in
          note_access t ~datum:(datum_of_addr t real) Trace.Acc_alloc;
          (prov, real))
        reqs
    in
    Wire.Allocated { addrs }
  | Wire.Free_batch { lps; session = _ } ->
    apply_frees t lps;
    Wire.Ack
  | Wire.Invalidate { session } ->
    if Session.concurrent_enabled t.session then purge_session t session
    else apply_invalidate t;
    Wire.Ack
  | Wire.Offload_call { root; plan; writebacks; session = _ } ->
    Session.join t.session t.id;
    let peer = peer () in
    (* the caller's modified data set arrives first so the walk sees the
       session's latest writes, exactly as a Call's callee would *)
    List.iter (install_item t ~src:peer ~kind:`Writeback) writebacks;
    if not (Space_id.equal root.Long_pointer.origin t.id) then
      raise
        (Remote_error
           (Format.asprintf "offload for foreign datum %a" Long_pointer.pp root));
    if
      in_heap t root.Long_pointer.addr
      && not (Allocator.is_allocated t.heap root.Long_pointer.addr)
    then
      raise
        (Remote_error
           (Format.asprintf "dangling offload root: %a was freed"
              Long_pointer.pp root));
    let out = Offload.run (walker_mem t) plan ~root:root.Long_pointer.addr in
    let stats = Transport.stats t.transport in
    Stats.add_offload_nodes stats out.Offload.visited;
    Stats.add_offload_wset stats (List.length out.Offload.mutated);
    (* data an update plan mutated joins the traveling modified set, so
       the reply below (and every later control transfer) refreshes the
       stale copies other participants hold *)
    let wset =
      List.map
        (fun (addr, ty) ->
          let lp = Long_pointer.make ~origin:t.id ~addr ~ty in
          Long_pointer.Table.replace t.traveling lp ();
          lp)
        out.Offload.mutated
    in
    flush_remote_ops t;
    let wb = collect_writebacks t in
    record_copy t ~dst:peer (List.length wb);
    Wire.Offload_return { results = out.Offload.results; writebacks = wb; wset }
  | Wire.Hb -> Wire.Hb_ack (* handled above; unreachable *)

let handle_encoded t src req =
  match handle t src req with
  | resp -> Wire.encode_response ~reg:t.registry resp
  | exception Peer_unreachable ep ->
    Wire.encode_response ~reg:t.registry (Wire.Error (unreachable_prefix ^ ep))
  | exception Remote_error msg when is_unreachable_msg msg ->
    Wire.encode_response ~reg:t.registry (Wire.Error msg)
  | exception exn ->
    Wire.encode_response ~reg:t.registry (Wire.Error (Printexc.to_string exn))

let dispatch t src req_str =
  match Wire.decode_framed ~reg:t.registry req_str with
  | exception exn ->
    Wire.encode_response ~reg:t.registry (Wire.Error (Printexc.to_string exn))
  | None, req -> handle_encoded t src req
  | Some seq, req -> (
    (* at-most-once: a re-sent or duplicated frame replays the cached
       reply instead of executing again *)
    t.reply_tick <- t.reply_tick + 1;
    match Hashtbl.find_opt t.replies src with
    | Some slot when slot.rs_seq = seq ->
      Stats.incr_duplicates (Transport.stats t.transport);
      slot.rs_used <- t.reply_tick;
      slot.rs_reply
    | Some _ | None ->
      let encoded = handle_encoded t src req in
      Hashtbl.replace t.replies src
        { rs_seq = seq; rs_reply = encoded; rs_used = t.reply_tick };
      (* bounded: evict the least-recently-used source beyond the cap.
         An evicted source loses duplicate suppression for its last
         request only — it would have to stay silent through [cap]
         other sources' requests and then re-send, which the retry
         envelope's bounded backoff cannot do. The O(cap) scan is
         amortized by how rarely the cap is hit. *)
      if Hashtbl.length t.replies > t.reply_cap then begin
        let victim =
          Hashtbl.fold
            (fun src slot acc ->
              match acc with
              | Some (_, best) when best <= slot.rs_used -> acc
              | _ -> Some (src, slot.rs_used))
            t.replies None
        in
        match victim with
        | Some (vsrc, _) -> Hashtbl.remove t.replies vsrc
        | None -> ()
      end;
      encoded)

(* --- sessions --- *)

let begin_session t =
  let info = Session.begin_session t.session ~ground:t.id in
  t.session_t0 <- Clock.now (Transport.clock t.transport);
  t.state_session <- Some info.Session.id;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_begin info.Session.id)

(* Common close-out once the coherency traffic is done: invalidate the
   ground's own cache, run the policy's control decision, close the
   session and record the end mark. *)
let close_tail t (info : Session.info) =
  (if Session.concurrent_enabled t.session then
     (* scoped: other sessions may still be open at this ground's peers,
        and (at a shared registry level) at this very process. Outcome
        accounting is skipped — it reads the whole cache, which may hold
        other open sessions' entries. *)
     purge_session t info.Session.id
   else begin
     record_outcomes t;
     note_access t ~datum:"*" Trace.Acc_drop;
     Cache.invalidate t.cache;
     Space_id.Table.reset t.shipped;
     Long_pointer.Table.reset t.traveling;
     Hashtbl.reset t.directory;
     t.state_session <- None
   end);
  (* Every participant has now recorded its outcomes into the shared
     profile; run one control decision and install the derived hints so
     the next session ships under the revised policy. *)
  (match t.policy with
  | None -> ()
  | Some pol ->
    let seconds = Clock.now (Transport.clock t.transport) -. t.session_t0 in
    let d = Srpc_policy.Engine.session_end ~seconds pol in
    List.iter
      (fun (r : Srpc_policy.Controller.rule) ->
        Hints.set t.hints ~ty:r.Srpc_policy.Controller.rule_ty
          {
            Hints.follow = r.Srpc_policy.Controller.follow;
            prune_others = r.Srpc_policy.Controller.prune_others;
          })
      d.Srpc_policy.Controller.rules;
    List.iter
      (fun ty -> Hints.clear t.hints ~ty)
      d.Srpc_policy.Controller.cleared);
  Session.close t.session;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_end info.Session.id)

let writeback_batches t =
  let items = collect_writebacks t in
  (* Own traveling items are already applied to our originals. *)
  let foreign =
    List.filter
      (fun (i : Wire.item) -> not (Space_id.equal i.lp.Long_pointer.origin t.id))
      items
  in
  group_by_space (fun (i : Wire.item) -> i.lp.Long_pointer.origin) foreign

(* The original reliable-transport close: write-backs applied on
   delivery. Kept verbatim so runs without a fault plan stay
   byte-identical. *)
let end_session_plain t (info : Session.info) =
  flush_remote_ops t;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Write_back info.Session.id);
  let batches = writeback_batches t in
  List.iter
    (fun (origin, items) ->
      expect_ack
        (request t ~dst:origin (Wire.Write_back { session = info.Session.id; items })))
    batches;
  (* snapshot participants only now: installing write-backs may have
     enrolled origin spaces that must also drop fresh cache entries *)
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate info.Session.id);
  let others = Space_id.Set.remove t.id info.Session.participants in
  Space_id.Set.iter
    (fun peer ->
      Transport.note t.transport ~src:(endpoint t)
        ~dst:(Space_id.to_string peer) (Trace.Inval_sent info.Session.id);
      expect_ack (request t ~dst:peer (Wire.Invalidate { session = info.Session.id })))
    others;
  close_tail t info

(* The crash-safe close: the modified data set is first staged at every
   origin, and applied only once the full set is delivered. A
   participant dying before the commit point aborts the session with the
   originals untouched everywhere; after the commit point each origin
   applies its complete per-origin set or (if it died) none of it. *)
let end_session_faulty t (info : Session.info) =
  let sid = info.Session.id in
  let batches =
    ground_guard t @@ fun () ->
    flush_remote_ops t;
    let batches = writeback_batches t in
    List.iter
      (fun (origin, items) ->
        expect_ack (request t ~dst:origin (Wire.Wb_stage { session = sid; items })))
      batches;
    batches
  in
  (* commit point: the complete modified data set is staged everywhere *)
  Transport.mark t.transport ~src:(endpoint t) (Trace.Write_back sid);
  List.iter
    (fun (origin, _) ->
      try expect_ack (request t ~dst:origin (Wire.Wb_commit { session = sid }))
      with Peer_unreachable _ ->
        (* the dead origin's staged set dies with it and is purged on
           next contact; it never applies a partial set *)
        ())
    batches;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate sid);
  let others = Space_id.Set.remove t.id info.Session.participants in
  Space_id.Set.iter
    (fun peer ->
      Transport.note t.transport ~src:(endpoint t)
        ~dst:(Space_id.to_string peer) (Trace.Inval_sent sid);
      try expect_ack (request t ~dst:peer (Wire.Invalidate { session = sid }))
      with Peer_unreachable _ -> ())
    others;
  close_tail t info

(* Targeted-invalidation bookkeeping shared by the delta closes:
   [reached] is the set already invalidated by combined frames; the
   remaining cachers get bare [Invalidate] unicasts, and whoever the
   copy directory spared is counted. *)
let targeted_invalidate t (info : Session.info) ~reached ~tolerate =
  let sid = info.Session.id in
  let remaining =
    Space_id.Set.diff
      (Space_id.Set.remove t.id info.Session.cachers)
      reached
  in
  Space_id.Set.iter
    (fun peer ->
      Transport.note t.transport ~src:(endpoint t)
        ~dst:(Space_id.to_string peer) (Trace.Inval_sent sid);
      try expect_ack (request t ~dst:peer (Wire.Invalidate { session = sid }))
      with Peer_unreachable _ when tolerate -> ())
    remaining;
  let invalidated = Space_id.Set.union reached remaining in
  let spared =
    Space_id.Set.diff
      (Space_id.Set.remove t.id info.Session.participants)
      invalidated
  in
  Stats.add_invalidations_skipped
    (Transport.stats t.transport)
    (Space_id.Set.cardinal spared)

(* Delta close over a reliable transport: one combined frame per origin
   carries its write-backs (full and delta), its pending frees and the
   targeted invalidation; the remaining caching spaces get bare
   invalidation unicasts; everyone else is spared entirely. *)
let end_session_delta_plain t (info : Session.info) =
  let sid = info.Session.id in
  let frees = t.pending_frees in
  t.pending_frees <- [];
  flush_remote_ops t;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Write_back sid);
  let batches = collect_close_batches_delta t in
  let frees_by = group_by_space (fun (lp : Long_pointer.t) -> lp.origin) frees in
  let origins =
    List.sort_uniq Space_id.compare
      (List.map fst batches @ List.map fst frees_by)
  in
  List.iter
    (fun origin ->
      let full, deltas =
        Option.value ~default:([], []) (List.assoc_opt origin batches)
      in
      let frees = Option.value ~default:[] (List.assoc_opt origin frees_by) in
      record_copy t ~dst:origin (List.length full + List.length deltas);
      Transport.note t.transport ~src:(endpoint t)
        ~dst:(Space_id.to_string origin) (Trace.Inval_sent sid);
      expect_ack
        (request t ~dst:origin
           (Wire.Wb_delta { session = sid; full; deltas; frees; invalidate = true })))
    origins;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate sid);
  let reached =
    List.fold_left
      (fun s o -> Space_id.Set.add o s)
      Space_id.Set.empty origins
  in
  targeted_invalidate t info ~reached ~tolerate:false;
  close_tail t info

(* Delta close under the fault envelope: same two-phase shape as the
   plain faulty close — stage everything (full items and deltas), pass
   the commit point, then invalidate — except that the invalidation is
   targeted by the copy directory instead of multicast to every
   participant. Frees and allocations flush as their own acked batches
   before the commit point so an abort can still discard cleanly. *)
let end_session_delta_faulty t (info : Session.info) =
  let sid = info.Session.id in
  let batches =
    ground_guard t @@ fun () ->
    flush_remote_ops t;
    let batches = collect_close_batches_delta t in
    List.iter
      (fun (origin, (full, deltas)) ->
        record_copy t ~dst:origin (List.length full + List.length deltas);
        if full <> [] then
          expect_ack
            (request t ~dst:origin (Wire.Wb_stage { session = sid; items = full }));
        if deltas <> [] then
          expect_ack
            (request t ~dst:origin (Wire.Wb_stage_delta { session = sid; deltas })))
      batches;
    batches
  in
  (* commit point: the complete modified data set is staged everywhere *)
  Transport.mark t.transport ~src:(endpoint t) (Trace.Write_back sid);
  List.iter
    (fun (origin, _) ->
      try expect_ack (request t ~dst:origin (Wire.Wb_commit { session = sid }))
      with Peer_unreachable _ -> ())
    batches;
  Transport.mark t.transport ~src:(endpoint t) (Trace.Invalidate sid);
  targeted_invalidate t info ~reached:Space_id.Set.empty ~tolerate:true;
  close_tail t info

let end_session t =
  refocus t;
  let info = Session.current_exn t.session in
  if not (Space_id.equal info.Session.ground t.id) then
    invalid_arg "Node.end_session: only the ground thread may end the session";
  if delta_on t then
    if faulty t then end_session_delta_faulty t info
    else end_session_delta_plain t info
  else if faulty t then end_session_faulty t info
  else end_session_plain t info

let with_session t f =
  begin_session t;
  match f () with
  | v ->
    end_session t;
    v
  | exception (Session.Session_aborted _ as exn) ->
    (* the abort already closed the session and reset the nodes *)
    raise exn
  | exception exn ->
    (try end_session t with _ -> ());
    raise exn

(* --- concurrent admission (see docs/TRAFFIC.md) --- *)

(* Test-only defect switch: when set, admission requests bypass the
   footprint conflict check and every candidate is admitted — two
   sessions writing the same datum root run concurrently. Exists so the
   traffic harness can prove that Race_lint, the SP008 protocol rule and
   the close-time optimistic validation all catch a broken admission
   controller; never set it in production code. *)
let chaos_admit_conflicting = ref false

let require_concurrent t who =
  if not (Session.concurrent_enabled t.session) then
    invalid_arg (who ^ ": session registry is not in concurrent mode");
  if t.strategy.Strategy.grain = Strategy.Twin_diff then
    invalid_arg (who ^ ": Twin_diff write-back grain is single-session only");
  if delta_on t then
    invalid_arg (who ^ ": delta coherency is single-session only")

let reserve_session t =
  require_concurrent t "Node.reserve_session";
  Session.reserve t.session

(* Demultiplex explicitly — e.g. the harness resuming a parked client's
   logical thread between two of its operations. *)
let focus_session t ~id = focus_node t id

(* Open a session that the admission controller has already recorded as
   admitted — either directly by [request_admission] or later by the
   close-time FIFO drain. Emits the admit mark the offline linters key
   the multiplexed protocol machine on, then the ordinary begin mark. *)
let start_admitted t ~id =
  require_concurrent t "Node.start_admitted";
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_admit id);
  let _info = Session.begin_reserved t.session ~id ~ground:t.id in
  focus_node t id;
  t.session_t0 <- Clock.now (Transport.clock t.transport);
  Transport.mark t.transport ~src:(endpoint t) (Trace.Session_begin id)

(* Ask the admission controller whether the session may open now. On
   [Admitted] the session is begun immediately; on [Queued] the caller
   parks it until a close's drain admits it (then [start_admitted]); on
   [Denied] the caller backs off ([Admission.backoff_delay]) and asks
   again with the same reserved id. *)
let request_admission ?(peers = []) t adm ~id ~footprint =
  require_concurrent t "Node.request_admission";
  match
    Admission.request ~force:!chaos_admit_conflicting ~peers adm ~session:id
      footprint
  with
  | Admission.Admitted ->
    start_admitted t ~id;
    Admission.Admitted
  | (Admission.Queued | Admission.Denied) as d ->
    Transport.mark t.transport ~src:(endpoint t) (Trace.Session_queued id);
    d
  | Admission.Overloaded _ as d ->
    (* the typed rejection is witnessed in the trace: rule SP009 holds a
       shed terminal until a fresh admit mark *)
    Transport.mark t.transport ~src:(endpoint t) (Trace.Session_shed id);
    d

(* Close with optimistic validation: if another session committed a
   write to any datum root this session touched since it was admitted
   (possible only when admission was bypassed), the close becomes an
   abort — the modified data set is discarded, never committed over the
   foreign write — and the caller retries the whole session. Either way
   the controller retires the session and returns the FIFO waiters its
   departure admitted; the caller starts each with [start_admitted]. *)
let end_session_validated t adm =
  require_concurrent t "Node.end_session_validated";
  refocus t;
  let info = Session.current_exn t.session in
  let sid = info.Session.id in
  if Admission.validate adm ~session:sid then begin
    end_session t;
    (`Committed, Admission.close adm ~session:sid)
  end
  else begin
    Admission.fail_validation adm ~session:sid;
    (try abort_session t ~reason:"admission validation failed"
     with Session.Session_aborted _ -> ());
    (`Validation_failed, Admission.close ~committed:false adm ~session:sid)
  end

(* --- memory management --- *)

let malloc t ~ty =
  refocus t;
  let addr = Allocator.alloc t.heap ~size:(sizeof t ty) in
  note_access t ~datum:(datum_of_addr t addr) Trace.Acc_alloc;
  addr

let malloc_n t ~ty n =
  refocus t;
  let size =
    Layout.sizeof t.registry (arch t) (Type_desc.Array (Type_desc.Named ty, n))
  in
  let addr = Allocator.alloc t.heap ~size in
  note_access t ~datum:(datum_of_addr t addr) Trace.Acc_alloc;
  addr

let extended_malloc t ~home ~ty =
  refocus t;
  if Space_id.equal home t.id then malloc t ~ty
  else begin
    ignore (Session.current_exn t.session);
    t.prov_counter <- t.prov_counter + 1;
    let prov = Long_pointer.make ~origin:home ~addr:(-t.prov_counter) ~ty in
    let e = Cache.allocate t.cache prov ~size:(sizeof t ty) in
    pin_entry t e;
    e.Cache.dirty <- true;
    Cache.mark_present t.cache e;
    Stats.add_remote_allocs (Transport.stats t.transport) 1;
    t.pending_allocs <- { prov; pa_entry = e } :: t.pending_allocs;
    if not t.strategy.Strategy.batch_remote_ops then flush_remote_ops t;
    e.Cache.local_addr
  end

let extended_free t addr =
  refocus t;
  if addr = 0 then ()
  else if Cache.in_region t.cache addr then (
    match Cache.find_by_addr t.cache addr with
    | None -> raise (Invalid_pointer addr)
    | Some e ->
      Cache.remove t.cache e;
      if Long_pointer.is_provisional e.Cache.lp then
        (* never reached its home space: cancel the batched allocation *)
        t.pending_allocs <-
          List.filter
            (fun pa -> not (Long_pointer.equal pa.prov e.Cache.lp))
            t.pending_allocs
      else begin
        Stats.add_remote_frees (Transport.stats t.transport) 1;
        t.pending_frees <- e.Cache.lp :: t.pending_frees;
        if not t.strategy.Strategy.batch_remote_ops then flush_remote_ops t
      end)
  else if in_heap t addr then begin
    Long_pointer.Table.fold
      (fun lp () acc ->
        if lp.Long_pointer.addr = addr && Space_id.equal lp.origin t.id then
          lp :: acc
        else acc)
      t.traveling []
    |> List.iter (Long_pointer.Table.remove t.traveling);
    Hashtbl.remove t.directory addr;
    note_access t ~datum:(datum_of_addr t addr) Trace.Acc_free;
    Allocator.free t.heap addr
  end
  else raise (Invalid_pointer addr)

(* --- construction --- *)

let create ?(page_size = 4096) ?(heap_base = 0x10000) ?(heap_limit = 0x4000000)
    ?(cache_limit = 0x24000000) ?hints ?policy ?(validate = false)
    ?(retry = default_retry) ?(reply_cache_cap = 64) ~id ~arch ~registry
    ~transport ~session ~strategy () =
  if retry.max_attempts < 1 then
    invalid_arg "Node.create: retry.max_attempts must be at least 1";
  if reply_cache_cap < 1 then
    invalid_arg "Node.create: reply_cache_cap must be at least 1";
  if heap_limit mod page_size <> 0 then
    invalid_arg "Node.create: heap_limit must be page-aligned";
  (* Reject a malformed registry before any datum is laid out against
     it: a defective descriptor corrupts silently at run time.
     @raise Srpc_analysis.Desc_lint.Invalid_registry on error findings. *)
  if validate then Srpc_analysis.Desc_lint.validate ~arches:[ arch ] registry;
  let space = Address_space.create ~page_size ~id ~arch () in
  let mmu = Mmu.create space in
  let heap = Allocator.create ~space ~base:heap_base ~limit:heap_limit in
  let cache =
    Cache.create ~space ~base:heap_limit ~limit:cache_limit
      ~grouping:strategy.Strategy.grouping ~grain:strategy.Strategy.grain
  in
  let hints = match hints with Some h -> h | None -> Hints.create () in
  let t =
    {
      id;
      space;
      mmu;
      heap;
      cache;
      registry;
      transport;
      session;
      hints;
      policy;
      strategy;
      procs = Hashtbl.create 16;
      shipped = Space_id.Table.create 4;
      traveling = Long_pointer.Table.create 16;
      pending_allocs = [];
      pending_frees = [];
      prov_counter = 0;
      session_t0 = 0.0;
      retry;
      seq = 0;
      replies = Hashtbl.create 8;
      reply_cap = reply_cache_cap;
      reply_tick = 0;
      staged = Hashtbl.create 4;
      directory = Hashtbl.create 32;
      state_session = None;
      sstash = Hashtbl.create 4;
      focused = None;
      dir_owner = Hashtbl.create 32;
    }
  in
  Mmu.set_handler mmu (handle_fault t);
  Transport.register transport (endpoint t) (dispatch t);
  (* Frame labels give the offline linters the opcode of every recorded
     frame without their own decoder. Registries are identical across a
     cluster (frames could not decode otherwise), so the last node's is
     as good as any. Only consulted while a trace is attached. *)
  Transport.set_frame_labeler transport
    (Some
       (fun ~dir frame ->
         match dir with
         | Trace.Request ->
           Wire.request_label (snd (Wire.decode_framed ~reg:registry frame))
         | Trace.Reply ->
           Wire.response_label (Wire.decode_response ~reg:registry frame)));
  t

let register t name body = Hashtbl.replace t.procs name body

let run_local t name args =
  match Hashtbl.find_opt t.procs name with
  | Some f -> f t args
  | None -> raise (Unknown_procedure name)
let traced t = Transport.traced t.transport
let cached_entries t = Cache.entry_count t.cache
let reply_cache_size t = Hashtbl.length t.replies

let copy_directory t =
  Hashtbl.fold
    (fun addr tbl acc ->
      (addr, Space_id.Table.fold (fun peer _ peers -> peer :: peers) tbl [])
      :: acc)
    t.directory []

let pp_alloc_table ppf t = Cache.pp_table ppf t.cache

module Xdr = Srpc_xdr.Xdr
open Srpc_types

type op =
  | Op_sum
  | Op_visit
  | Op_find of int
  | Op_update of { idx : int; delta : int }
  | Op_map of { mul : int; add : int }

type plan = {
  root_ty : string;
  hops : string list;
  value_field : string;
  op : op;
  hop_bound : int;
}

let op_name = function
  | Op_sum -> "sum"
  | Op_visit -> "visit"
  | Op_find _ -> "find"
  | Op_update _ -> "update"
  | Op_map _ -> "map"

let is_update = function
  | Op_update _ | Op_map _ -> true
  | Op_sum | Op_visit | Op_find _ -> false

let pp_plan ppf p =
  Format.fprintf ppf "%s over %s via [%s]/%s bound %d" (op_name p.op) p.root_ty
    (String.concat ";" p.hops) p.value_field p.hop_bound

(* --- wire form --- *)

(* The encoder is deliberately blind (it writes whatever plan the caller
   built) so the fuzz tests can ship malformed plans through a real
   encode; every structural check lives in [validate], run by the
   decoder at the trust boundary. *)

let encode_op enc = function
  | Op_sum -> Xdr.Enc.int enc 0
  | Op_visit -> Xdr.Enc.int enc 1
  | Op_find target ->
    Xdr.Enc.int enc 2;
    Xdr.Enc.hyper enc target
  | Op_update { idx; delta } ->
    Xdr.Enc.int enc 3;
    Xdr.Enc.int enc idx;
    Xdr.Enc.hyper enc delta
  | Op_map { mul; add } ->
    Xdr.Enc.int enc 4;
    Xdr.Enc.hyper enc mul;
    Xdr.Enc.hyper enc add

let decode_op dec =
  match Xdr.Dec.int dec with
  | 0 -> Op_sum
  | 1 -> Op_visit
  | 2 -> Op_find (Xdr.Dec.hyper dec)
  | 3 ->
    let idx = Xdr.Dec.int dec in
    let delta = Xdr.Dec.hyper dec in
    Op_update { idx; delta }
  | 4 ->
    let mul = Xdr.Dec.hyper dec in
    let add = Xdr.Dec.hyper dec in
    Op_map { mul; add }
  | n -> raise (Xdr.Decode_error (Printf.sprintf "bad offload op tag %d" n))

let encode_plan enc p =
  Xdr.Enc.string enc p.root_ty;
  Xdr.Enc.list enc Xdr.Enc.string p.hops;
  Xdr.Enc.string enc p.value_field;
  encode_op enc p.op;
  Xdr.Enc.int enc p.hop_bound

(* A traversal plan drives an automatic walk of the home's heap, so its
   shape is validated before any state is touched: the hop bound must be
   a positive, sane budget; a hop listed twice makes the declared chain
   cyclic; every named field must exist (with the right shape) on some
   struct type reachable from the root type. *)

let max_hop_bound = 1 lsl 20

let err fmt = Printf.ksprintf (fun m -> raise (Xdr.Decode_error m)) fmt

(* Struct types reachable from [root_ty] through pointer fields (direct
   or array-of-pointer), each with its field list. *)
let reachable_structs reg root_ty =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec pointees acc = function
    | Type_desc.Pointer name -> name :: acc
    | Type_desc.Array (t, _) -> pointees acc t
    | Type_desc.Struct fields ->
      List.fold_left (fun acc (_, t) -> pointees acc t) acc fields
    | Type_desc.Named name -> (
      match Registry.find_opt reg name with
      | Some t -> pointees acc t
      | None -> acc)
    | Type_desc.Prim _ -> acc
  in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Registry.find_opt reg name with
      | None -> ()
      | Some desc -> (
        match Registry.resolve reg desc with
        | Type_desc.Struct fields ->
          out := (name, fields) :: !out;
          List.iter visit (List.fold_left (fun acc (_, t) -> pointees acc t) [] fields)
        | _ -> ())
    end
  in
  visit root_ty;
  List.rev !out

let field_on reg fields name =
  match List.assoc_opt name fields with
  | None -> None
  | Some t -> Some (Registry.resolve reg t)

let is_pointer_field reg fields name =
  match field_on reg fields name with
  | Some (Type_desc.Pointer _) -> true
  | Some (Type_desc.Array (t, _)) -> (
    match Registry.resolve reg t with Type_desc.Pointer _ -> true | _ -> false)
  | _ -> false

let is_value_field reg fields name =
  match field_on reg fields name with
  | Some (Type_desc.Prim _) -> true
  | Some (Type_desc.Array (t, _)) -> (
    match Registry.resolve reg t with Type_desc.Prim _ -> true | _ -> false)
  | _ -> false

let validate ~reg p =
  if p.hop_bound <= 0 then err "offload plan: non-positive hop bound";
  if p.hop_bound > max_hop_bound then
    err "offload plan: hop bound %d exceeds the %d cap" p.hop_bound max_hop_bound;
  let rec dup = function
    | [] -> None
    | h :: t -> if List.mem h t then Some h else dup t
  in
  (match dup p.hops with
  | Some h -> err "offload plan: cyclic traversal (hop %S listed twice)" h
  | None -> ());
  let structs = reachable_structs reg p.root_ty in
  if structs = [] then err "offload plan: unknown root type %S" p.root_ty;
  List.iter
    (fun hop ->
      if not (List.exists (fun (_, fields) -> is_pointer_field reg fields hop) structs)
      then err "offload plan: unknown hop field %S" hop)
    p.hops;
  if
    not
      (List.exists
         (fun (_, fields) -> is_value_field reg fields p.value_field)
         structs)
  then err "offload plan: unknown value field %S" p.value_field

let decode_plan ~reg dec =
  let root_ty = Xdr.Dec.string dec in
  let hops = Xdr.Dec.list dec Xdr.Dec.string in
  let value_field = Xdr.Dec.string dec in
  let op = decode_op dec in
  let hop_bound = Xdr.Dec.int dec in
  let p = { root_ty; hops; value_field; op; hop_bound } in
  validate ~reg p;
  p

(* --- the walker --- *)

(* One interpreter serves both sides: the home walks its own heap and
   the client replays the very same traversal over its cache (loads
   fault through the MMU, so the local arm pays its honest cost). The
   memory behind the walk is abstracted to a closure record the node
   supplies; the walker itself only computes layouts. *)

type mem = {
  w_arch : Srpc_memory.Arch.t;
  w_reg : Registry.t;
  w_load_word : int -> int;  (** program-path pointer load at an address *)
  w_load : Type_desc.prim -> int -> int;
      (** program-path primitive load, int-ified ([int_of_float] for
          floats — both sides truncate identically) *)
  w_store : Type_desc.prim -> int -> int -> unit;
}

type outcome = {
  results : int list;
  visited : int;
  mutated : (int * string) list;
      (** (address, type) of every node whose value slots were written,
          in first-touch order *)
}

type slot = { s_addr : int; s_prim : Type_desc.prim; s_node : int; s_ty : string }

let prim_stride p = Type_desc.prim_size p

let run mem plan ~root =
  let reg = mem.w_reg and arch = mem.w_arch in
  let named ty = Type_desc.Named ty in
  let seen = Hashtbl.create 64 in
  let visited = ref 0 in
  let slots = ref [] in
  let rec go addr ty =
    if addr <> 0 && (not (Hashtbl.mem seen addr)) && !visited < plan.hop_bound
    then begin
      Hashtbl.replace seen addr ();
      incr visited;
      let fields =
        match Registry.resolve reg (named ty) with
        | Type_desc.Struct fields -> fields
        | _ -> []
      in
      (* value slots of this node, in element order *)
      (match field_on reg fields plan.value_field with
      | Some (Type_desc.Prim p) ->
        let off = Layout.field_offset reg arch ~ty:(named ty) ~field:plan.value_field in
        slots := { s_addr = addr + off; s_prim = p; s_node = addr; s_ty = ty } :: !slots
      | Some (Type_desc.Array (elem, n)) -> (
        match Registry.resolve reg elem with
        | Type_desc.Prim p ->
          let off =
            Layout.field_offset reg arch ~ty:(named ty) ~field:plan.value_field
          in
          for i = 0 to n - 1 do
            slots :=
              { s_addr = addr + off + (i * prim_stride p); s_prim = p;
                s_node = addr; s_ty = ty }
              :: !slots
          done
        | _ -> ())
      | _ -> ());
      (* hop fields in declared order *)
      List.iter
        (fun hop ->
          match field_on reg fields hop with
          | Some (Type_desc.Pointer child_ty) ->
            let off = Layout.field_offset reg arch ~ty:(named ty) ~field:hop in
            go (mem.w_load_word (addr + off)) child_ty
          | Some (Type_desc.Array (elem, n)) -> (
            match Registry.resolve reg elem with
            | Type_desc.Pointer child_ty ->
              let off = Layout.field_offset reg arch ~ty:(named ty) ~field:hop in
              for i = 0 to n - 1 do
                go
                  (mem.w_load_word (addr + off + (i * arch.Srpc_memory.Arch.word_size)))
                  child_ty
              done
            | _ -> ())
          | _ -> ())
        plan.hops
    end
  in
  go root plan.root_ty;
  let slots = Array.of_list (List.rev !slots) in
  let value i = mem.w_load slots.(i).s_prim slots.(i).s_addr in
  let mutated = ref [] in
  let write i v =
    let s = slots.(i) in
    mem.w_store s.s_prim s.s_addr v;
    if not (List.mem_assoc s.s_node !mutated) then
      mutated := (s.s_node, s.s_ty) :: !mutated
  in
  let n = Array.length slots in
  let sum () =
    let t = ref 0 in
    for i = 0 to n - 1 do
      t := !t + value i
    done;
    !t
  in
  let results =
    match plan.op with
    | Op_sum -> [ sum () ]
    | Op_visit -> [ !visited; sum () ]
    | Op_find target ->
      let found = ref (-1) in
      (try
         for i = 0 to n - 1 do
           if value i = target then begin
             found := i;
             raise Exit
           end
         done
       with Exit -> ());
      [ !found ]
    | Op_update { idx; delta } ->
      if idx < 0 || idx >= n then [ -1 ]
      else begin
        let v = value idx + delta in
        write idx v;
        [ v ]
      end
    | Op_map { mul; add } ->
      let t = ref 0 in
      for i = 0 to n - 1 do
        let v = (mul * value i) + add in
        write i v;
        t := !t + v
      done;
      [ n; !t ]
  in
  { results; visited = !visited; mutated = List.rev !mutated }

(** A simulated distributed system: shared clock, statistics, transport,
    type registry (name server) and session state, plus the nodes. *)

open Srpc_memory
open Srpc_simnet

type t

(** [create ()] builds an empty cluster. [cost] defaults to the paper's
    testbed calibration ({!Cost_model.sparc_10mbps}). Passing [policy]
    shares one adaptive policy engine across every node added later:
    receivers feed it access-pattern observations and senders consult
    its budgets, closing the feedback loop (see {!Srpc_policy.Engine}). *)
val create : ?cost:Cost_model.t -> ?policy:Srpc_policy.Engine.t -> unit -> t

val clock : t -> Clock.t
val stats : t -> Stats.t
val transport : t -> Transport.t
val registry : t -> Srpc_types.Registry.t
val session : t -> Session.t

(** [add_node t ~site ()] creates a node. [proc] defaults to 0, [arch]
    to the paper's SPARC, [strategy] to {!Strategy.smart}. [validate]
    is forwarded to {!Node.create}: when true, the shared registry is
    linted against the node's architecture before the node comes up. *)
val add_node :
  ?proc:int ->
  ?arch:Arch.t ->
  ?strategy:Strategy.t ->
  ?page_size:int ->
  ?validate:bool ->
  ?retry:Node.retry ->
  ?reply_cache_cap:int ->
  t ->
  site:int ->
  unit ->
  Node.t

(** [validate t] runs the descriptor linter over the shared registry
    against the architectures of every node added so far (defaulting to
    SPARC for an empty cluster), and checks installed closure-shape
    hints against the registry (rule TD007). Call it after registering
    types.
    @raise Srpc_analysis.Desc_lint.Invalid_registry on error findings. *)
val validate : t -> unit

val node : t -> Space_id.t -> Node.t option
val nodes : t -> Node.t list

(** [register_type t name desc] publishes a type on the name server. *)
val register_type : t -> string -> Srpc_types.Type_desc.t -> unit

(** Cluster-wide closure-shape hints (paper, section 6: programmer
    suggestions for the closure's shape). *)
val hints : t -> Hints.t

(** The shared adaptive policy engine, when the cluster was created with
    one. *)
val policy : t -> Srpc_policy.Engine.t option

(** [set_closure_hint t ~ty rule] installs a hint for [ty] on every
    node. *)
val set_closure_hint : t -> ty:string -> Hints.rule -> unit

(** Simulated seconds elapsed so far. *)
val now : t -> float

(** [snapshot t] is the current statistics. *)
val snapshot : t -> Stats.snapshot

(** [install_faults t plan] turns fault injection on for the whole
    cluster: every frame's fate is decided by [plan], nodes switch to
    the sequence-numbered retry envelope, and session close becomes the
    all-or-nothing staged write-back (see {!Srpc_simnet.Fault_plan}). *)
val install_faults : t -> Fault_plan.t -> unit

(** [clear_faults t] restores the perfectly reliable transport (and the
    exact pre-fault-layer wire behavior). *)
val clear_faults : t -> unit

val fault_plan : t -> Fault_plan.t option

open Srpc_types

type rule = { follow : string list; prune_others : bool }
type t = (string, rule) Hashtbl.t

exception Unknown_field of { ty : string; field : string }

let () =
  Printexc.register_printer (function
    | Unknown_field { ty; field } ->
      Some
        (Printf.sprintf
           "Srpc_core.Hints.Unknown_field: hint for type %S names field %S, \
            which the type does not declare"
           ty field)
    | _ -> None)

let create () = Hashtbl.create 8
let set t ~ty rule = Hashtbl.replace t ty rule
let clear t ~ty = Hashtbl.remove t ty
let find t ~ty = Hashtbl.find_opt t ty
let to_list t = Hashtbl.fold (fun ty rule acc -> (ty, rule) :: acc) t []

(* Pointer leaves contributed by one direct field, at its offset. *)
let field_pointer_leaves reg arch ~ty ~field =
  let desc = Type_desc.Named ty in
  let base =
    try Layout.field_offset reg arch ~ty:desc ~field
    with Not_found -> raise (Unknown_field { ty; field })
  in
  let fty = Layout.field_type reg ~ty:desc ~field in
  List.map (fun (off, target) -> (base + off, target)) (Layout.pointer_leaves reg arch fty)

let pointer_fields t reg arch ~ty =
  match find t ~ty with
  | None -> Layout.pointer_leaves reg arch (Type_desc.Named ty)
  | Some { follow; prune_others } ->
    let followed =
      List.concat_map (fun field -> field_pointer_leaves reg arch ~ty ~field) follow
    in
    if prune_others then followed
    else begin
      let seen = List.map fst followed in
      let rest =
        Layout.pointer_leaves reg arch (Type_desc.Named ty)
        |> List.filter (fun (off, _) -> not (List.mem off seen))
      in
      followed @ rest
    end

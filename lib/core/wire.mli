(** Runtime wire protocol.

    Every frame is XDR-encoded; byte counts the cost model charges come
    from these real encodings. Pointer-valued arguments travel as long
    pointers ({!wvalue}); transferred data travels as {!item}s — a long
    pointer naming the datum plus its canonical (type-directed XDR)
    encoding. *)

type wvalue =
  | WUnit
  | WBool of bool
  | WInt of int64
  | WFloat of float
  | WStr of string
  | WPtr of Long_pointer.t option  (** unswizzled pointer; [None] = null *)
  | WFun of Value.funref  (** named-procedure reference *)

type item = { lp : Long_pointer.t; data : string }

type range = { off : int; bytes : string }
(** one changed byte range of a datum's canonical encoding *)

type delta = { dlp : Long_pointer.t; base_len : int; ranges : range list }
(** delta-coherency write-back: patch [ranges] onto the [base_len]-byte
    image the receiver holds for [dlp]. Decoding validates the ranges —
    ascending, non-empty, non-overlapping, inside [base_len] — and
    raises [Xdr.Decode_error] otherwise, so a corrupt frame can never
    drive an out-of-bounds patch. *)

type request =
  | Call of {
      session : int;
      proc : string;
      args : wvalue list;
      writebacks : item list;  (** the traveling modified data set *)
      eager : item list;  (** bounded closure of the pointer arguments *)
    }
  | Fetch of { session : int; wanted : Long_pointer.t list }
      (** lazy path: first touch of a protected page requests all the
          data allocated to it *)
  | Write_back of { session : int; items : item list }
      (** end-of-session write-back to the origin space *)
  | Alloc_batch of { session : int; reqs : (int * string) list }
      (** batched [extended_malloc]: (provisional id, type name) *)
  | Free_batch of { session : int; lps : Long_pointer.t list }
      (** batched [extended_free] *)
  | Invalidate of { session : int }
      (** end-of-session multicast: drop all cached data *)
  | Abort of { session : int }
      (** crash-recovery: discard everything the session touched; the
          modified data set is never applied *)
  | Wb_stage of { session : int; items : item list }
      (** all-or-nothing close, phase one: buffer these write-back items
          at the origin without applying them *)
  | Wb_commit of { session : int }
      (** all-or-nothing close, phase two: apply everything staged for
          this session *)
  | Wb_delta of {
      session : int;
      full : item list;
      deltas : delta list;
      frees : Long_pointer.t list;
      invalidate : bool;
    }
      (** delta-coherency close frame, batched per destination: full
          write-back items (delta fallback), byte-range deltas, pending
          frees homed at the receiver, and — when [invalidate] — the
          targeted invalidation, all coalesced into one message *)
  | Wb_stage_delta of { session : int; deltas : delta list }
      (** delta twin of [Wb_stage]: buffer deltas at the origin without
          patching them; applied by [Wb_commit] *)
  | Call_d of {
      session : int;
      proc : string;
      args : wvalue list;
      writebacks : item list;
      wb_deltas : delta list;
      eager : item list;
      frees : Long_pointer.t list;
    }
      (** delta twin of [Call]: callee-homed modified data travels as
          byte-range deltas and pending frees homed at the callee ride
          in the same frame. Pending allocations can NOT ride along:
          provisional pointers must never appear on the wire, so the
          [Alloc_batch] round-trip still precedes the call (see
          docs/DELTA.md). *)
  | Hb
      (** liveness probe from the failure detector ({!Health}); answered
          with a bare [Ack]. Carries no session — [request_session]
          reports [-1] and the protocol linter exempts frames labeled
          ["hb"] from session attribution. *)
  | Offload_call of {
      session : int;
      root : Long_pointer.t;
      plan : Offload.plan;
      writebacks : item list;
    }
      (** traversal offloading: instead of faulting the structure over,
          ship a bounded declarative {!Offload.plan} to [root]'s home,
          which walks its own heap and returns only the result. The
          caller's traveling modified data set rides along (as with
          [Call]) so the walk sees the session's latest writes. The plan
          is validated at decode time ({!Offload.validate}); a malformed
          plan is a typed decode error, never a runaway walk. *)

type response =
  | Return of { results : wvalue list; writebacks : item list; eager : item list }
  | Fetched of { items : item list }
  | Allocated of { addrs : (int * int) list }  (** provisional id, real address *)
  | Ack
  | Error of string  (** remote exception, re-raised at the caller *)
  | Return_d of {
      results : wvalue list;
      writebacks : item list;
      wb_deltas : delta list;
      eager : item list;
      frees : Long_pointer.t list;
    }
      (** reply to [Call_d]: the callee's control transfer back, with
          the same delta treatment and coalesced frees *)
  | Hb_ack
      (** reply to {!request.Hb}: distinct from [Ack] so heartbeat
          exchanges are identifiable by frame label alone *)
  | Offload_return of {
      results : int list;
      writebacks : item list;
      wset : Long_pointer.t list;
    }
      (** reply to [Offload_call]: the plan's result vector, the home's
          traveling modified data relevant to the caller, and the write
          set of nodes an update plan mutated (for coherency and
          footprint accounting) *)

val encode_request : reg:Srpc_types.Registry.t -> request -> string
val decode_request : reg:Srpc_types.Registry.t -> string -> request

(** [encode_framed ~reg ~seq r] wraps [r] in the retry envelope: a
    sequence number the receiver uses to suppress duplicate deliveries.
    The encoding is distinguishable from a bare request, so enveloped
    and plain frames can share a dispatcher. *)
val encode_framed : reg:Srpc_types.Registry.t -> seq:int -> request -> string

(** [decode_framed ~reg s] decodes either framing: [(Some seq, r)] for
    an enveloped frame, [(None, r)] for a bare one. *)
val decode_framed :
  reg:Srpc_types.Registry.t -> string -> int option * request

(** The session id carried by every request. *)
val request_session : request -> int

(** Stable frame-opcode names for trace labels — [Wb_delta] frames
    carrying the targeted invalidation render as ["wb-delta+inv"] so the
    protocol linter can order them against the close marks. *)
val request_label : request -> string

val response_label : response -> string
val encode_response : reg:Srpc_types.Registry.t -> response -> string
val decode_response : reg:Srpc_types.Registry.t -> string -> response
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit

(** Declarative traversal plans executed at a datum's home.

    The dual of closure shipping: for low-locality pointer chasing the
    cheapest transfer strategy is not moving the bytes at all. A caller
    submits a small, bounded plan — an aggregate op along typed pointer
    fields, the shapes [lib/workloads] implements client-side — and the
    datum's home walks its own heap, returning only the result (plus the
    write set of any updates, for coherency and footprint accounting).
    See docs/OFFLOAD.md. *)

open Srpc_types

(** The aggregate computed over the traversal's value slots (the
    [value_field] occurrences of every visited node, in walk order). *)
type op =
  | Op_sum  (** [\[sum\]] of all slots *)
  | Op_visit  (** [\[visited-node-count; sum\]] *)
  | Op_find of int
      (** [\[index of the first slot equal to the target, or -1\]] *)
  | Op_update of { idx : int; delta : int }
      (** add [delta] to slot [idx]: [\[new value\]], or [\[-1\]] when
          [idx] is out of range (no write happens) *)
  | Op_map of { mul : int; add : int }
      (** every slot [:= mul*v + add]: [\[slot-count; new sum\]] *)

type plan = {
  root_ty : string;  (** registered type of the root datum *)
  hops : string list;
      (** pointer fields followed from each node, in this order; a field
          absent on a node's type contributes nothing *)
  value_field : string;
      (** the numeric field (or array of numerics) read at each node *)
  op : op;
  hop_bound : int;  (** maximum nodes visited; must be positive *)
}

val op_name : op -> string

(** [is_update op] — does the plan write memory at the home? *)
val is_update : op -> bool

val pp_plan : Format.formatter -> plan -> unit

(** {1 Wire form}

    The encoder is blind; {!validate} runs at decode, so a malformed
    plan is a typed {!Srpc_xdr.Xdr.Decode_error} at the trust boundary,
    never a crash mid-walk. *)

val max_hop_bound : int

val encode_plan : Srpc_xdr.Xdr.Enc.t -> plan -> unit

(** @raise Srpc_xdr.Xdr.Decode_error on a non-positive or oversized hop
    bound, a duplicated hop field (a declared cycle), or a root type /
    hop field / value field unknown to the reachable type graph. *)
val validate : reg:Registry.t -> plan -> unit

val decode_plan : reg:Registry.t -> Srpc_xdr.Xdr.Dec.t -> plan

(** {1 The walker}

    One interpreter serves both sides. The home runs it over its own
    heap; a client running the plan locally runs the very same code over
    its cache, where loads fault through the MMU and pay the honest
    fetch cost the strategy comparison needs. *)

type mem = {
  w_arch : Srpc_memory.Arch.t;
  w_reg : Registry.t;
  w_load_word : int -> int;  (** program-path pointer load *)
  w_load : Type_desc.prim -> int -> int;
      (** program-path primitive load, int-ified ([int_of_float] for
          floats; both sides truncate identically) *)
  w_store : Type_desc.prim -> int -> int -> unit;
}

type outcome = {
  results : int list;
  visited : int;
  mutated : (int * string) list;
      (** (address, type) of every node whose value slots were written,
          in first-touch order *)
}

(** [run mem plan ~root] walks preorder depth-first from [root]
    (an ordinary local address), following [plan.hops] in declared
    order (array-of-pointer fields element-wise), skipping nulls,
    visiting each address at most once, and stopping at
    [plan.hop_bound] visited nodes. *)
val run : mem -> plan -> root:int -> outcome

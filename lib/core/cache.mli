(** Cache area and data allocation table.

    When a long pointer arrives, the runtime "allocates for the
    referenced data a protected page area ... The allocation determines
    the location to which the referenced data will be copied if the
    protected page area must be accessed" (paper, section 3.2). This
    module owns that region: slot placement (per the configurable
    grouping strategy), the data allocation table (page, offset → long
    pointer), the reverse maps used by swizzling, per-entry presence,
    page-grain dirtiness (with optional pristine twins for diff-grain
    write-back), and the protection state machine

    {v no-access (some datum absent)  →  read-only (all present, clean)
       →  read-write (dirty)  →  read-only again after a flush v}

    It performs no I/O: fetching, encoding and coherency live in
    {!Node}. *)

open Srpc_memory

type entry = {
  mutable lp : Long_pointer.t;
      (** current home; rebound when a provisional allocation resolves *)
  local_addr : int;  (** swizzled address of the cached copy *)
  size : int;  (** in-memory size on this architecture *)
  pages : int list;  (** pages the slot occupies, ascending *)
  mutable present : bool;  (** false until the data transfer *)
  mutable dirty : bool;
  mutable prefetched : bool;
      (** the data transfer was speculative (closure extra), not a
          demand fetch — the access-pattern profile's raw material *)
  mutable touched : bool;  (** the program accessed this datum *)
  mutable version : int;
      (** bumped on every install that rewrites the copy; the shadow is
          usable for delta write-back only while [shadow_version] still
          matches (stale snapshots force the full-item fallback) *)
  mutable shadow : string option;
      (** last canonical encoding known to agree byte-for-byte with the
          home's record of our copy — the delta base image *)
  mutable shadow_version : int;
  mutable pins : int list;
      (** ids of the open sessions that touched this entry — concurrent
          admission's per-session pin counts. Always [[]] in
          single-session runs (the runtime only pins when the session
          registry is in multi-open mode). *)
}

type t

(** Raised when the cache region has no room for a new slot. *)
exception Region_full

(** [create ~space ~base ~limit ~grouping ~grain] manages the cache
    region [base, limit) of [space]. *)
val create :
  space:Address_space.t ->
  base:int ->
  limit:int ->
  grouping:Strategy.alloc_grouping ->
  grain:Strategy.writeback_grain ->
  t

val in_region : t -> int -> bool

(** [set_policy t ~grouping ~grain] reconfigures placement and write-back
    granularity. Only safe while the cache holds no entries.
    @raise Invalid_argument otherwise. *)
val set_policy :
  t -> grouping:Strategy.alloc_grouping -> grain:Strategy.writeback_grain -> unit

(** [set_scope t scope] partitions placement by session (concurrent
    admission): while [scope] is [Some sid], new entries are placed on
    pages that no other session's entries share, because fault handling
    is page-grained — a fault sweeps every absent entry on the page, and
    a page mixing two sessions would cross-contaminate their fetches.
    [None] (the default) is the legacy single-session placement. *)
val set_scope : t -> int option -> unit

(** [allocate t lp ~size] reserves a slot for [lp] (absent, clean) and
    returns its entry. The slot's pages are mapped and protected.
    @raise Invalid_argument if [lp] is already allocated. *)
val allocate : t -> Long_pointer.t -> size:int -> entry

(** Lookups. [find_by_addr] requires the exact slot base address —
    interior pointers are not valid RPC currency, as in the paper. *)

val find_by_lp : t -> Long_pointer.t -> entry option
val find_by_addr : t -> int -> entry option

(** [find_containing t addr] is the entry whose slot covers [addr] —
    unlike {!find_by_addr} it also resolves interior addresses (array
    elements, field offsets), as needed by touch tracking. *)
val find_containing : t -> int -> entry option
val entries_on_page : t -> int -> entry list
val iter_entries : t -> (entry -> unit) -> unit
val entry_count : t -> int

(** [mark_present t e] records the data transfer for [e] and refreshes
    the protection of its pages. *)
val mark_present : t -> entry -> unit

(** [mark_page_dirty t ~page] services a write fault: snapshots a twin
    when diff-grain is configured, then opens the page for writing.
    All entries on the page are considered modified (page-grain). *)
val mark_page_dirty : t -> page:int -> unit

val is_page_dirty : t -> page:int -> bool
val dirty_pages : t -> int list

(** [pin e ~session] records [session] as a user of [e]'s copy. *)
val pin : entry -> session:int -> unit

val pinned_by : entry -> session:int -> bool

(** [dirty_entries t] is the modified data set to ship at the next
    control transfer: with [Page_grain], every present entry on a dirty
    page; with [Twin_diff], only entries whose bytes differ from the
    twin. [?pinned_by] restricts the set to one session's pinned entries
    (concurrent admission: a session's control transfer must not leak
    another open session's modified data). *)
val dirty_entries : ?pinned_by:int -> t -> entry list

(** [clean_after_flush t] marks the whole modified data set clean,
    drops twins, and restores read-only protection. With [?pinned_by],
    only that session's entries are cleaned and page dirty bits are
    left alone (they may witness another open session's page-grain
    dirtiness); the page state fully resets when the last session
    closes. *)
val clean_after_flush : ?pinned_by:int -> t -> unit

(** Delta-coherency snapshot plumbing (see docs/DELTA.md). *)

(** [bump_version e] records that [e]'s copy was rewritten from the
    wire; any existing shadow becomes stale unless re-synced. *)
val bump_version : entry -> unit

(** [sync_shadow e image] records [image] as the encoding both sides now
    agree on (after installing directly from the home, or after shipping
    a write-back to it). *)
val sync_shadow : entry -> string -> unit

(** [shadow_base e] is the delta base image, or [None] when the shadow
    is missing or stale. *)
val shadow_base : entry -> string option

(** [shadow_image e] is the raw shadow bytes even when stale. Staleness
    means the cache {e encoding} drifted from the shadow, but the bytes
    themselves are still the last encoding agreed with the home — which
    is exactly the base a home-originated refresh delta patches. *)
val shadow_image : entry -> string option

(** [diff_ranges ~base ~now] is the list of changed byte ranges
    [(offset, bytes)] between two equal-length encodings, ascending and
    non-overlapping; nearby changes (gap ≤ 8 bytes) merge into one range
    to amortize per-range framing.
    @raise Invalid_argument on a length mismatch. *)
val diff_ranges : base:string -> now:string -> (int * string) list

(** [rebind t e lp] changes [e]'s home (provisional → real). *)
val rebind : t -> entry -> Long_pointer.t -> unit

(** [remove t e] drops [e] from all tables ([extended_free] of a cached
    datum). The slot joins a size-classed free list and is reused by
    later allocations of the same rounded size. *)
val remove : t -> entry -> unit

(** [invalidate t] drops every entry, twin and page — the session-end
    invalidation. *)
val invalidate : t -> unit

(** [invalidate_session t ~session] is the session-scoped variant used
    under concurrent admission: entries pinned only by [session] are
    removed (slots recycle), shared entries merely lose the pin, and
    other open sessions' entries are untouched. *)
val invalidate_session : t -> session:int -> unit

(** [refresh_protection t ~page] recomputes the page's protection from
    its entries' state. *)
val refresh_protection : t -> page:int -> unit

(** Bytes of cache slots currently allocated (the working-set measure
    used by the allocation-strategy ablation). *)
val allocated_bytes : t -> int

val used_pages : t -> int

(** Render the data allocation table in the layout of the paper's
    Table 1: page, offset within the page, long pointer. *)
val pp_table : Format.formatter -> t -> unit

(** Structural invariants, for tests: the lookup tables are mutually
    consistent, entries lie inside the region on their recorded pages
    without overlapping, page protection matches entry state, and byte
    accounting adds up. *)
val check_invariants : t -> (unit, string) result

type closure_budget = Unbounded | Bytes of int
type alloc_grouping = By_origin | Sequential | By_type | Entry_per_page
type closure_order = Breadth_first | Depth_first
type writeback_grain = Page_grain | Twin_diff
type admission_policy = Queue_conflicts | Abort_retry
type offload_mode = Offload_never | Offload_auto | Offload_always

type t = {
  budget : closure_budget;
  grouping : alloc_grouping;
  order : closure_order;
  grain : writeback_grain;
  batch_remote_ops : bool;
  delta_coherency : bool;
  admission : admission_policy;
  offload : offload_mode;
}

let smart ?(closure_size = 8192) ?(delta = false)
    ?(admission = Queue_conflicts) ?(offload = Offload_never) () =
  {
    budget = Bytes closure_size;
    grouping = By_origin;
    order = Breadth_first;
    grain = Page_grain;
    batch_remote_ops = true;
    delta_coherency = delta;
    admission;
    offload;
  }

let fully_eager =
  {
    budget = Unbounded;
    grouping = By_origin;
    order = Breadth_first;
    grain = Page_grain;
    batch_remote_ops = true;
    delta_coherency = false;
    admission = Queue_conflicts;
    offload = Offload_never;
  }

let fully_lazy =
  {
    budget = Bytes 0;
    grouping = Entry_per_page;
    order = Breadth_first;
    grain = Page_grain;
    batch_remote_ops = true;
    delta_coherency = false;
    admission = Queue_conflicts;
    offload = Offload_never;
  }

let pp ppf t =
  let budget ppf = function
    | Unbounded -> Format.pp_print_string ppf "inf"
    | Bytes n -> Format.fprintf ppf "%dB" n
  in
  let grouping = function
    | By_origin -> "by-origin"
    | Sequential -> "sequential"
    | By_type -> "by-type"
    | Entry_per_page -> "entry-per-page"
  in
  let order = function Breadth_first -> "bfs" | Depth_first -> "dfs" in
  let grain = function Page_grain -> "page" | Twin_diff -> "twin-diff" in
  let admission = function
    | Queue_conflicts -> "queue"
    | Abort_retry -> "abort-retry"
  in
  (* The suffix is elided at [Offload_never] so every pre-offload
     strategy renders byte-identically (trace fingerprints). *)
  let offload = function
    | Offload_never -> ""
    | Offload_auto -> ";off=auto"
    | Offload_always -> ";off=always"
  in
  Format.fprintf ppf
    "{closure=%a;group=%s;order=%s;grain=%s;batch=%b;delta=%b;adm=%s%s}" budget
    t.budget (grouping t.grouping) (order t.order) (grain t.grain)
    t.batch_remote_ops t.delta_coherency
    (admission t.admission) (offload t.offload)

let budget_allows t ~total ~extra =
  match t.budget with
  | Unbounded -> true
  | Bytes b -> total + extra <= b

(** The adaptive-policy engine: one {!Profile} plus one {!Controller},
    shared by every node of a simulated cluster the way the hint table
    is. The runtime feeds profile events as data moves and faults; the
    ground node calls {!session_end} when a session closes, which rolls
    the profile window and runs one controller step. The closure engine
    consults {!budget_for} instead of the static strategy budget. *)

type t

(** [create ()] builds an engine. [cost] defaults to the paper-testbed
    calibration ({!Srpc_simnet.Cost_model.sparc_10mbps}) and must match
    the cluster's cost model for the waste/stall comparison to be
    meaningful. *)
val create :
  ?config:Controller.config -> ?cost:Srpc_simnet.Cost_model.t -> unit -> t

val profile : t -> Profile.t
val controller : t -> Controller.t

(** Current closure budget (bytes) for transfers seeded by a pointer to
    [ty]. *)
val budget_for : t -> ty:string -> int

(** [session_end t] closes the profile window and runs one controller
    step; the caller applies the returned hint rules to its hint table.
    [seconds] — the session's measured (simulated) duration — switches
    the controller to its hill-climbing mode (see {!Controller.step}). *)
val session_end : ?seconds:float -> t -> Controller.decision

(** Sessions observed so far (controller steps taken). *)
val sessions : t -> int

(** Per-type budgets currently in force. *)
val budgets : t -> (string * int) list

(** {1 Traversal offloading}

    A deterministic per-root-type two-arm learner for the third transfer
    mode (see docs/OFFLOAD.md): each arm holds an EMA of the measured
    simulated seconds a traversal plan took when run locally vs shipped
    to the root's home. While either arm is under-sampled the decision
    alternates (local first); afterwards the cheaper arm is exploited,
    with a fixed-period re-exploration of the loser. *)

(** [choose_offload t ~ty] — should the next plan rooted at [ty] be
    offloaded? Counts as a decision (advances the exploration
    schedule). *)
val choose_offload : t -> ty:string -> bool

(** [offload_feedback t ~ty ~offloaded ~seconds] reports the measured
    duration of a plan run back to the arm that produced it. *)
val offload_feedback : t -> ty:string -> offloaded:bool -> seconds:float -> unit

(** [offload_choice t ~ty] — the current exploitation verdict:
    ["offload"], ["local"], or ["unsampled"] while either arm lacks
    samples. Read-only (no decision is recorded). *)
val offload_choice : t -> ty:string -> string

val pp : Format.formatter -> t -> unit

(* Per-root-type two-arm bandit for traversal offloading: each arm keeps
   an EMA of the measured (simulated) seconds a plan run took that way.
   Everything is deterministic — alternation while under-sampled, then
   exploit-the-min with a fixed-period re-exploration — so simulated
   clusters replay bit-identically. *)
type offload_arm = { mutable o_ema : float; mutable o_samples : int }

type offload_stat = {
  o_local : offload_arm;
  o_remote : offload_arm;
  mutable o_decisions : int;
}

type t = {
  profile : Profile.t;
  controller : Controller.t;
  mutable sessions : int;
  offloads : (string, offload_stat) Hashtbl.t;
}

let create ?config ?(cost = Srpc_simnet.Cost_model.sparc_10mbps) () =
  let controller = Controller.create ?config ~cost () in
  let max_windows = max 1 (Controller.config controller).Controller.windows in
  {
    profile = Profile.create ~max_windows ();
    controller;
    sessions = 0;
    offloads = Hashtbl.create 8;
  }

let profile t = t.profile
let controller t = t.controller
let budget_for t ~ty = Controller.budget_for t.controller ~ty

let session_end ?seconds t =
  Profile.end_window t.profile;
  t.sessions <- t.sessions + 1;
  let windows = (Controller.config t.controller).Controller.windows in
  Controller.step ?seconds t.controller (Profile.summary t.profile ~windows)

let sessions t = t.sessions

let budgets t = Controller.budgets t.controller

(* --- traversal offloading (docs/OFFLOAD.md) --- *)

let offload_min_samples = 2
let offload_explore_period = 16
let offload_alpha = 0.3

let offload_stat t ty =
  match Hashtbl.find_opt t.offloads ty with
  | Some s -> s
  | None ->
    let arm () = { o_ema = 0.0; o_samples = 0 } in
    let s = { o_local = arm (); o_remote = arm (); o_decisions = 0 } in
    Hashtbl.add t.offloads ty s;
    s

let remote_wins s = s.o_remote.o_ema < s.o_local.o_ema

let choose_offload t ~ty =
  let s = offload_stat t ty in
  s.o_decisions <- s.o_decisions + 1;
  if
    s.o_local.o_samples < offload_min_samples
    || s.o_remote.o_samples < offload_min_samples
  then
    (* under-sampled: alternate the arms, local first on ties, so both
       EMAs exist before any exploitation *)
    s.o_local.o_samples > s.o_remote.o_samples
  else if s.o_decisions mod offload_explore_period = 0 then
    (* periodic re-exploration of the losing arm keeps a stale EMA from
       locking the decision in after the workload shifts *)
    not (remote_wins s)
  else remote_wins s

let offload_feedback t ~ty ~offloaded ~seconds =
  let s = offload_stat t ty in
  let arm = if offloaded then s.o_remote else s.o_local in
  arm.o_ema <-
    (if arm.o_samples = 0 then seconds
     else (offload_alpha *. seconds) +. ((1.0 -. offload_alpha) *. arm.o_ema));
  arm.o_samples <- arm.o_samples + 1

let offload_choice t ~ty =
  match Hashtbl.find_opt t.offloads ty with
  | Some s
    when s.o_local.o_samples >= offload_min_samples
         && s.o_remote.o_samples >= offload_min_samples ->
    if remote_wins s then "offload" else "local"
  | Some _ | None -> "unsampled"

let pp ppf t =
  Format.fprintf ppf "@[<v>adaptive policy after %d session(s):@," t.sessions;
  List.iter
    (fun (ty, b) -> Format.fprintf ppf "  %-16s budget %dB@," ty b)
    (budgets t);
  Format.fprintf ppf "@]"

type t = {
  profile : Profile.t;
  controller : Controller.t;
  mutable sessions : int;
}

let create ?config ?(cost = Srpc_simnet.Cost_model.sparc_10mbps) () =
  let controller = Controller.create ?config ~cost () in
  let max_windows = max 1 (Controller.config controller).Controller.windows in
  { profile = Profile.create ~max_windows (); controller; sessions = 0 }

let profile t = t.profile
let controller t = t.controller
let budget_for t ~ty = Controller.budget_for t.controller ~ty

let session_end ?seconds t =
  Profile.end_window t.profile;
  t.sessions <- t.sessions + 1;
  let windows = (Controller.config t.controller).Controller.windows in
  Controller.step ?seconds t.controller (Profile.summary t.profile ~windows)

let sessions t = t.sessions

let budgets t = Controller.budgets t.controller

let pp ppf t =
  Format.fprintf ppf "@[<v>adaptive policy after %d session(s):@," t.sessions;
  List.iter
    (fun (ty, b) -> Format.fprintf ppf "  %-16s budget %dB@," ty b)
    (budgets t);
  Format.fprintf ppf "@]"

(** Adaptive closure-budget controller.

    Consumes a {!Profile.summary} between sessions and revises the
    transfer policy, replacing the paper's hand-tuned [closure_size]:

    - {b Per-type closure budget, AIMD-style.} For each pointed-to type
      the controller weighs the simulated cost of wasted prefetches
      (bytes shipped and converted for nothing, priced through
      {!Srpc_simnet.Cost_model}) against the measured fetch-stall time.
      When waste dominates it multiplicatively shrinks the budget; when
      stalls dominate it grows it — doubling while prefetching has
      produced no waste at all (slow start), additively afterwards.

    - {b Auto-derived closure-shape hints.} Per (parent type, field)
      edge it computes the touch rate of pointed-to children; fields
      whose children are reliably used become [follow] fields, and when
      every other observed field is reliably cold the rest are pruned —
      the machine-written version of the paper's "suggestions provided
      by the programmer" (section 6). Pruned children that the program
      later demands are observed as [Demanded] edges, so a wrong prune
      heals in the next window rather than locking in. *)

type config = {
  initial_budget : int;  (** starting per-type budget, bytes (paper: 8192) *)
  min_budget : int;
  max_budget : int;
  increase_step : int;  (** additive increase, bytes *)
  decrease_factor : float;  (** multiplicative decrease, in (0, 1) *)
  slow_start : bool;  (** double instead of add while waste is zero *)
  cost_bias : float;
      (** hysteresis: one cost side must exceed the other by this factor
          before the budget moves *)
  follow_threshold : float;  (** touch rate at or above which a field is followed *)
  prune_threshold : float;  (** touch rate at or below which a field may be pruned *)
  min_edge_samples : int;  (** observations before an edge is trusted *)
  windows : int;  (** sliding windows aggregated per decision *)
  tolerance : float;
      (** measured path: a probe window within this fraction of the best
          window seen is accepted *)
  min_step : int;
      (** measured path: bracketing step floor, bytes; a failed probe at
          this step freezes the budget *)
}

val default_config : config

(** A machine-derived closure-shape hint for one type, mirroring
    [Srpc_core.Hints.rule] as plain data so this library stays below the
    runtime in the dependency order. *)
type rule = { rule_ty : string; follow : string list; prune_others : bool }

type decision = {
  budgets : (string * int) list;  (** every tracked type's budget, after the step *)
  rules : rule list;  (** hints to install or replace *)
  cleared : string list;  (** types whose machine hint should be removed *)
}

type t

val create : ?config:config -> cost:Srpc_simnet.Cost_model.t -> unit -> t
val config : t -> config

(** [budget_for t ~ty] is the current budget for closures seeded by a
    pointer to [ty]; an unseen type starts at [initial_budget]. *)
val budget_for : t -> ty:string -> int

(** [step t summary] runs one control decision and updates the internal
    budget state.

    Without [seconds] the budgets move purely on the waste/stall cost
    comparison (AIMD). With [seconds] — the measured simulated duration
    of the window just closed — the comparison only picks the opening
    direction and the controller hill-climbs on the measurement itself:
    probes that keep the window time within [tolerance] of the best seen
    are kept (step doubling until the first miss), losing probes are
    reverted with the direction reversed and the step halved, and a
    second miss at [min_step] freezes the budget at the last winner.
    This finds optima the pure comparison cannot: a budget where some
    waste is irreducible (tree closures always ship a few untouched
    subtrees) but any smaller budget pays more in fetch round-trips than
    it saves in wire bytes. A window costing over twice the best resets
    the climb — the workload has changed. *)
val step : ?seconds:float -> t -> Profile.summary -> decision

(** Per-type budgets currently in force, sorted by type name. *)
val budgets : t -> (string * int) list

val pp_decision : Format.formatter -> decision -> unit

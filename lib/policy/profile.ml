type edge_outcome = Prefetched_touched | Prefetched_wasted | Demanded | Avoided

type type_stats = {
  mutable p_bytes : int;
  mutable t_bytes : int;
  mutable w_bytes : int;
  mutable d_bytes : int;
  mutable d_count : int;
  mutable stall_s : float;
}

type edge_stats = {
  mutable e_prefetched : int;
  mutable e_touched : int;
  mutable e_demanded : int;
  mutable e_avoided : int;
  mutable e_wasted_bytes : int;
}

type window = {
  by_type : (string, type_stats) Hashtbl.t;
  by_edge : (string * string, edge_stats) Hashtbl.t;
}

type t = {
  mutable current : window;
  mutable history : window list;  (** newest first *)
  max_windows : int;
}

let fresh_window () = { by_type = Hashtbl.create 8; by_edge = Hashtbl.create 8 }

let create ?(max_windows = 8) () =
  if max_windows < 1 then invalid_arg "Profile.create: max_windows < 1";
  { current = fresh_window (); history = []; max_windows }

let type_stats w ty =
  match Hashtbl.find_opt w.by_type ty with
  | Some s -> s
  | None ->
    let s =
      { p_bytes = 0; t_bytes = 0; w_bytes = 0; d_bytes = 0; d_count = 0; stall_s = 0.0 }
    in
    Hashtbl.add w.by_type ty s;
    s

let edge_stats w key =
  match Hashtbl.find_opt w.by_edge key with
  | Some s -> s
  | None ->
    let s =
      { e_prefetched = 0; e_touched = 0; e_demanded = 0; e_avoided = 0; e_wasted_bytes = 0 }
    in
    Hashtbl.add w.by_edge key s;
    s

let prefetched t ~ty ~bytes =
  let s = type_stats t.current ty in
  s.p_bytes <- s.p_bytes + bytes

let demand_fetched t ~ty ~bytes =
  let s = type_stats t.current ty in
  s.d_bytes <- s.d_bytes + bytes;
  s.d_count <- s.d_count + 1

let stall t ~ty ~seconds =
  let s = type_stats t.current ty in
  s.stall_s <- s.stall_s +. seconds

let outcome t ~ty ~bytes ~touched =
  let s = type_stats t.current ty in
  if touched then s.t_bytes <- s.t_bytes + bytes
  else s.w_bytes <- s.w_bytes + bytes

let edge t ~ty ~field ~outcome ~bytes =
  let s = edge_stats t.current (ty, field) in
  match outcome with
  | Prefetched_touched ->
    s.e_prefetched <- s.e_prefetched + 1;
    s.e_touched <- s.e_touched + 1
  | Prefetched_wasted ->
    s.e_prefetched <- s.e_prefetched + 1;
    s.e_wasted_bytes <- s.e_wasted_bytes + bytes
  | Demanded -> s.e_demanded <- s.e_demanded + 1
  | Avoided -> s.e_avoided <- s.e_avoided + 1

let end_window t =
  let keep = t.max_windows in
  t.history <- t.current :: t.history;
  (if List.length t.history > keep then
     t.history <- List.filteri (fun i _ -> i < keep) t.history);
  t.current <- fresh_window ()

let window_count t = List.length t.history

(* --- aggregation --- *)

type type_summary = {
  ts_prefetched_bytes : int;
  ts_touched_bytes : int;
  ts_wasted_bytes : int;
  ts_demand_bytes : int;
  ts_demand_count : int;
  ts_stall_seconds : float;
}

type edge_summary = {
  es_prefetched : int;
  es_touched : int;
  es_demanded : int;
  es_avoided : int;
  es_wasted_bytes : int;
}

type summary = {
  types : (string * type_summary) list;
  edges : ((string * string) * edge_summary) list;
}

let summary t ~windows =
  let picked = List.filteri (fun i _ -> i < windows) t.history in
  let types : (string, type_summary) Hashtbl.t = Hashtbl.create 8 in
  let edges : (string * string, edge_summary) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun w ->
      Hashtbl.iter
        (fun ty (s : type_stats) ->
          let acc =
            match Hashtbl.find_opt types ty with
            | Some a -> a
            | None ->
              {
                ts_prefetched_bytes = 0;
                ts_touched_bytes = 0;
                ts_wasted_bytes = 0;
                ts_demand_bytes = 0;
                ts_demand_count = 0;
                ts_stall_seconds = 0.0;
              }
          in
          Hashtbl.replace types ty
            {
              ts_prefetched_bytes = acc.ts_prefetched_bytes + s.p_bytes;
              ts_touched_bytes = acc.ts_touched_bytes + s.t_bytes;
              ts_wasted_bytes = acc.ts_wasted_bytes + s.w_bytes;
              ts_demand_bytes = acc.ts_demand_bytes + s.d_bytes;
              ts_demand_count = acc.ts_demand_count + s.d_count;
              ts_stall_seconds = acc.ts_stall_seconds +. s.stall_s;
            })
        w.by_type;
      Hashtbl.iter
        (fun key (s : edge_stats) ->
          let acc =
            match Hashtbl.find_opt edges key with
            | Some a -> a
            | None ->
              {
                es_prefetched = 0;
                es_touched = 0;
                es_demanded = 0;
                es_avoided = 0;
                es_wasted_bytes = 0;
              }
          in
          Hashtbl.replace edges key
            {
              es_prefetched = acc.es_prefetched + s.e_prefetched;
              es_touched = acc.es_touched + s.e_touched;
              es_demanded = acc.es_demanded + s.e_demanded;
              es_avoided = acc.es_avoided + s.e_avoided;
              es_wasted_bytes = acc.es_wasted_bytes + s.e_wasted_bytes;
            })
        w.by_edge)
    picked;
  let sorted_bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { types = sorted_bindings types; edges = sorted_bindings edges }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (ty, ts) ->
      Format.fprintf ppf
        "%-16s prefetched=%dB touched=%dB wasted=%dB demand=%dB(%d) stall=%.6fs@,"
        ty ts.ts_prefetched_bytes ts.ts_touched_bytes ts.ts_wasted_bytes
        ts.ts_demand_bytes ts.ts_demand_count ts.ts_stall_seconds)
    s.types;
  List.iter
    (fun ((ty, field), es) ->
      Format.fprintf ppf
        "%s.%s: prefetched=%d touched=%d demanded=%d avoided=%d wasted=%dB@,"
        ty field es.es_prefetched es.es_touched es.es_demanded es.es_avoided
        es.es_wasted_bytes)
    s.edges;
  Format.fprintf ppf "@]"

open Srpc_simnet

type config = {
  initial_budget : int;
  min_budget : int;
  max_budget : int;
  increase_step : int;
  decrease_factor : float;
  slow_start : bool;
  cost_bias : float;
  follow_threshold : float;
  prune_threshold : float;
  min_edge_samples : int;
  windows : int;
  tolerance : float;
  min_step : int;
}

let default_config =
  {
    initial_budget = 8192;
    min_budget = 512;
    max_budget = 4 * 1024 * 1024;
    increase_step = 4096;
    decrease_factor = 0.5;
    slow_start = true;
    cost_bias = 1.5;
    follow_threshold = 0.5;
    prune_threshold = 0.2;
    min_edge_samples = 8;
    windows = 3;
    tolerance = 0.02;
    min_step = 512;
  }

type rule = { rule_ty : string; follow : string list; prune_others : bool }

type decision = {
  budgets : (string * int) list;
  rules : rule list;
  cleared : string list;
}

(* Hill-climb state for one type's budget (used only on the measured
   path, see [step]). [reversed] separates the opening slow-start (step
   doubles while every probe keeps paying off) from the bracketing phase
   (step only shrinks, on reversals). *)
type climb = {
  mutable dir : int;  (* +1 grow, -1 shrink, 0 undecided *)
  mutable step : int;  (* bytes moved per window *)
  mutable reversed : bool;
  mutable frozen : bool;  (* bracketing finished: hold here *)
}

type t = {
  config : config;
  cost : Cost_model.t;
  budgets : (string, int) Hashtbl.t;
  ruled : (string, rule) Hashtbl.t;  (** hints we currently have installed *)
  climbs : (string, climb) Hashtbl.t;
  mutable best_seconds : float;  (** best accepted measured window *)
  mutable prev_budgets : (string * int) list;  (** vector before the last move *)
  mutable moved : bool;  (** did the last window change any budget *)
}

let create ?(config = default_config) ~cost () =
  if config.min_budget < 0 || config.max_budget < config.min_budget then
    invalid_arg "Controller.create: bad budget bounds";
  if not (config.decrease_factor > 0.0 && config.decrease_factor < 1.0) then
    invalid_arg "Controller.create: decrease_factor must be in (0, 1)";
  {
    config;
    cost;
    budgets = Hashtbl.create 8;
    ruled = Hashtbl.create 8;
    climbs = Hashtbl.create 8;
    best_seconds = infinity;
    prev_budgets = [];
    moved = false;
  }

let config t = t.config

let budget_for t ~ty =
  match Hashtbl.find_opt t.budgets ty with
  | Some b -> b
  | None ->
    Hashtbl.add t.budgets ty t.config.initial_budget;
    t.config.initial_budget

(* Simulated seconds it cost to ship and convert [bytes] that were never
   used: wire time plus the XDR CPU on both ends. *)
let byte_cost t bytes =
  float_of_int bytes
  *. ((1.0 /. t.cost.Cost_model.bandwidth) +. (2.0 *. t.cost.Cost_model.per_byte_cpu))

(* --- budget step: AIMD weighed by the cost model --- *)

let is_idle (ts : Profile.type_summary) =
  ts.Profile.ts_prefetched_bytes = 0
  && ts.Profile.ts_demand_count = 0
  && ts.Profile.ts_stall_seconds = 0.0

(* Which way the waste/stall comparison points: -1 shrink, +1 grow,
   0 balanced. *)
let prior_dir t (ts : Profile.type_summary) =
  let c = t.config in
  let waste_cost = byte_cost t ts.Profile.ts_wasted_bytes in
  let stall_cost = ts.Profile.ts_stall_seconds in
  if waste_cost > c.cost_bias *. stall_cost && ts.Profile.ts_wasted_bytes > 0 then
    -1
  else if stall_cost > c.cost_bias *. waste_cost && ts.Profile.ts_demand_count > 0
  then 1
  else 0

let step_budget t ty (ts : Profile.type_summary) =
  let c = t.config in
  let b = budget_for t ~ty in
  let b' =
    if is_idle ts then b
    else
      match prior_dir t ts with
      | -1 -> max c.min_budget (int_of_float (float_of_int b *. c.decrease_factor))
      | 1 ->
        let grown =
          if c.slow_start && ts.Profile.ts_wasted_bytes = 0 then b * 2
          else b + c.increase_step
        in
        min c.max_budget grown
      | _ -> b
  in
  Hashtbl.replace t.budgets ty b';
  b'

(* --- hint derivation from edge touch rates --- *)

let edge_rate (es : Profile.edge_summary) =
  let samples =
    es.Profile.es_prefetched + es.Profile.es_demanded + es.Profile.es_avoided
  in
  if samples = 0 then None
  else
    Some
      ( samples,
        float_of_int (es.Profile.es_touched + es.Profile.es_demanded)
        /. float_of_int samples )

let step_rules t (edges : ((string * string) * Profile.edge_summary) list) =
  let c = t.config in
  (* group observed edges by parent type *)
  let by_ty : (string, (string * int * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun ((ty, field), es) ->
      match edge_rate es with
      | None -> ()
      | Some (samples, rate) -> (
        let cell = (field, samples, rate) in
        match Hashtbl.find_opt by_ty ty with
        | Some r -> r := cell :: !r
        | None -> Hashtbl.add by_ty ty (ref [ cell ])))
    edges;
  let rules = ref [] and cleared = ref [] in
  Hashtbl.iter
    (fun ty fields ->
      let eligible =
        List.filter (fun (_, samples, _) -> samples >= c.min_edge_samples) !fields
      in
      let follow =
        eligible
        |> List.filter (fun (_, _, rate) -> rate >= c.follow_threshold)
        |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
        |> List.map (fun (field, _, _) -> field)
      in
      if follow = [] then begin
        (* not enough confidence: withdraw any hint we installed before *)
        if Hashtbl.mem t.ruled ty then begin
          Hashtbl.remove t.ruled ty;
          cleared := ty :: !cleared
        end
      end
      else begin
        let rest =
          List.filter (fun (field, _, _) -> not (List.mem field follow)) !fields
        in
        let prune_others =
          rest <> []
          && List.for_all
               (fun (_, samples, rate) ->
                 samples >= c.min_edge_samples && rate <= c.prune_threshold)
               rest
        in
        let rule = { rule_ty = ty; follow; prune_others } in
        (match Hashtbl.find_opt t.ruled ty with
        | Some existing when existing = rule -> () (* unchanged: no churn *)
        | Some _ | None ->
          Hashtbl.replace t.ruled ty rule;
          rules := rule :: !rules)
      end)
    by_ty;
  (List.rev !rules, List.rev !cleared)

let budgets t =
  Hashtbl.fold (fun ty b acc -> (ty, b) :: acc) t.budgets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- measured path: hill-climb on the observed session time ---

   The waste-vs-stall comparison alone cannot settle at an optimum that
   carries irreducible waste (any tree closure ships some untouched
   subtrees), so when the caller supplies the measured window time we use
   the comparison only to pick the opening direction and then bracket the
   optimum: a probe that keeps the time within [tolerance] of the best
   window seen is accepted and the walk continues (step doubling while no
   probe has failed yet — the slow-start phase); a probe that loses
   reverts the whole budget vector, reverses direction and halves the
   step; a second failure at [min_step] freezes the type where it last
   won. A later window costing over twice the recorded best means the
   workload changed: all climb state resets and bracketing starts over
   from the current budgets. *)

let climb_for t ty =
  match Hashtbl.find_opt t.climbs ty with
  | Some c -> c
  | None ->
    let c = { dir = 0; step = 0; reversed = false; frozen = false } in
    Hashtbl.add t.climbs ty c;
    c

let step_measured t (summary : Profile.summary) seconds =
  let c = t.config in
  let active =
    List.filter (fun (_, ts) -> not (is_idle ts)) summary.Profile.types
  in
  if seconds > 2.0 *. t.best_seconds then begin
    Hashtbl.reset t.climbs;
    t.best_seconds <- seconds;
    t.prev_budgets <- [];
    t.moved <- false
  end;
  let acceptable =
    seconds <= (t.best_seconds *. (1.0 +. c.tolerance)) +. 1e-12
  in
  if t.moved && not acceptable then begin
    (* the last move lost ground: undo it and tighten the bracket *)
    List.iter (fun (ty, b) -> Hashtbl.replace t.budgets ty b) t.prev_budgets;
    List.iter
      (fun (ty, _) ->
        let cl = climb_for t ty in
        if cl.dir <> 0 then
          if cl.reversed && cl.step <= c.min_step then cl.frozen <- true
          else begin
            cl.reversed <- true;
            cl.dir <- -cl.dir;
            cl.step <- max c.min_step (cl.step / 2)
          end)
      active
  end
  else t.best_seconds <- min t.best_seconds seconds;
  t.prev_budgets <- budgets t;
  let moved = ref false in
  List.iter
    (fun (ty, ts) ->
      let cl = climb_for t ty in
      if not cl.frozen then begin
        if cl.dir = 0 then cl.dir <- prior_dir t ts;
        if cl.dir <> 0 then begin
          let b = budget_for t ~ty in
          if cl.step = 0 then cl.step <- max c.min_step (b / 2)
          else if not cl.reversed then cl.step <- min c.max_budget (cl.step * 2);
          let b' = min c.max_budget (max c.min_budget (b + (cl.dir * cl.step))) in
          if b' <> b then begin
            Hashtbl.replace t.budgets ty b';
            moved := true
          end
          else cl.frozen <- true (* pinned against a clamp: done *)
        end
      end)
    active;
  t.moved <- !moved

let step ?seconds t (summary : Profile.summary) =
  (match seconds with
  | None ->
    List.iter (fun (ty, ts) -> ignore (step_budget t ty ts)) summary.Profile.types
  | Some s -> step_measured t summary s);
  let rules, cleared = step_rules t summary.Profile.edges in
  { budgets = budgets t; rules; cleared }

let pp_decision ppf (d : decision) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (ty, b) -> Format.fprintf ppf "budget %-16s %dB@," ty b) d.budgets;
  List.iter
    (fun r ->
      Format.fprintf ppf "hint   %-16s follow=[%s]%s@," r.rule_ty
        (String.concat ";" r.follow)
        (if r.prune_others then " prune-others" else ""))
    d.rules;
  List.iter (fun ty -> Format.fprintf ppf "clear  %-16s@," ty) d.cleared;
  Format.fprintf ppf "@]"

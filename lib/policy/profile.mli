(** Online access-pattern profile.

    The paper tunes the closure budget by hand and leaves the shape of
    the shipped subset of the transitive closure as an open problem
    (section 6). This module is the measurement half of the feedback
    loop that closes it: the runtime reports, per pointed-to type and
    per (parent type, field) edge, what became of every datum the
    closure engine moved — prefetched and then touched, prefetched and
    never touched (wasted bytes), demand-fetched after a fault (a
    callback stall), or skipped and never missed.

    Events accumulate into the current window; {!end_window} rolls the
    window into a bounded sliding history (one window per session is the
    intended cadence). {!summary} aggregates the most recent windows so
    the controller reacts to recent behavior, not the whole past. *)

type t

(** What became of one pointed-to datum, observed from the parent field
    that referenced it. *)
type edge_outcome =
  | Prefetched_touched  (** shipped speculatively, then used *)
  | Prefetched_wasted  (** shipped speculatively, never used *)
  | Demanded  (** not shipped; the program faulted and fetched it *)
  | Avoided  (** not shipped, and the program never needed it *)

val create : ?max_windows:int -> unit -> t

(** {1 Event feed (called by the runtime)} *)

(** [prefetched t ~ty ~bytes]: a datum of [ty] was installed without the
    receiver having asked for it. *)
val prefetched : t -> ty:string -> bytes:int -> unit

(** [demand_fetched t ~ty ~bytes]: a datum of [ty] was fetched because a
    fault demanded it. *)
val demand_fetched : t -> ty:string -> bytes:int -> unit

(** [stall t ~ty ~seconds]: the program was blocked [seconds] of
    simulated time on a fetch round trip attributed to [ty]. *)
val stall : t -> ty:string -> seconds:float -> unit

(** [outcome t ~ty ~bytes ~touched]: a prefetched datum's fate at
    invalidation time. *)
val outcome : t -> ty:string -> bytes:int -> touched:bool -> unit

(** [edge t ~ty ~field ~outcome ~bytes]: the fate of a child referenced
    by direct field [field] of a cached parent of type [ty]. *)
val edge : t -> ty:string -> field:string -> outcome:edge_outcome -> bytes:int -> unit

(** [end_window t] rolls the current window into the history. *)
val end_window : t -> unit

(** {1 Aggregation (consumed by the controller)} *)

type type_summary = {
  ts_prefetched_bytes : int;
  ts_touched_bytes : int;  (** prefetched and touched *)
  ts_wasted_bytes : int;  (** prefetched, never touched *)
  ts_demand_bytes : int;
  ts_demand_count : int;
  ts_stall_seconds : float;
}

type edge_summary = {
  es_prefetched : int;  (** children shipped speculatively *)
  es_touched : int;  (** ... of which touched *)
  es_demanded : int;  (** children fetched on a fault *)
  es_avoided : int;  (** children neither shipped nor missed *)
  es_wasted_bytes : int;
}

type summary = {
  types : (string * type_summary) list;
  edges : ((string * string) * edge_summary) list;
      (** keyed by (parent type, field) *)
}

(** [summary t ~windows] aggregates the last [windows] closed windows
    (the open current window is not included). *)
val summary : t -> windows:int -> summary

(** Closed windows currently held. *)
val window_count : t -> int

val pp_summary : Format.formatter -> summary -> unit

(* Hand-rolled JSON for BENCH_soak.json (the bench tree stays free of
   parser dependencies, same as the other BENCH_* emitters). One row
   per (label, config, comparison): the chaos run's completion,
   latency percentiles, robustness counters and the fault-free
   baseline's p99 with the ratio the gate checks. *)

let row ~label ~(cfg : Soak.config) (cmp : Soak.comparison) =
  let c = cmp.Soak.chaos in
  Printf.sprintf
    "    {\"label\": %S, \"seed\": %d, \"contention\": %S, \"policy\": %S,\n\
    \     \"horizon_s\": %.1f, \"drop\": %.4f, \"dup\": %.4f,\n\
    \     \"crash_period_s\": %.1f, \"outage_s\": %.3f,\n\
    \     \"sessions\": %d, \"committed\": %d, \"failed\": %d,\n\
    \     \"aborts\": %d, \"recovered\": %d, \"completion\": %.6f,\n\
    \     \"makespan_s\": %.6f, \"throughput_per_s\": %.3f,\n\
    \     \"latency_p50_s\": %.6f, \"latency_p95_s\": %.6f, \
     \"latency_p99_s\": %.6f,\n\
    \     \"baseline_p99_s\": %.6f, \"p99_ratio\": %.3f,\n\
    \     \"crashes\": %d, \"revives\": %d, \"heartbeats\": %d, \
     \"suspicions\": %d,\n\
    \     \"sheds\": %d, \"breaker_trips\": %d, \"recoveries\": %d,\n\
    \     \"queued\": %d, \"retried\": %d, \"validation_failed\": %d,\n\
    \     \"race_errors\": %d, \"proto_errors\": %d}"
    label cfg.Soak.seed
    (match cfg.Soak.contention with
    | Traffic.Disjoint -> "disjoint"
    | Traffic.Hot -> "hot")
    (match cfg.Soak.policy with
    | Srpc_core.Strategy.Queue_conflicts -> "queue"
    | Srpc_core.Strategy.Abort_retry -> "abort-retry")
    cfg.Soak.horizon cfg.Soak.drop cfg.Soak.dup cfg.Soak.crash_period
    cfg.Soak.outage c.Soak.s_sessions c.Soak.s_committed c.Soak.s_failed
    c.Soak.s_aborts c.Soak.s_recovered c.Soak.s_completion c.Soak.s_makespan
    c.Soak.s_throughput c.Soak.s_p50 c.Soak.s_p95 c.Soak.s_p99
    cmp.Soak.fault_free.Soak.s_p99 cmp.Soak.p99_ratio c.Soak.s_crashes
    c.Soak.s_revives c.Soak.s_heartbeats c.Soak.s_suspicions c.Soak.s_sheds
    c.Soak.s_breaker_trips c.Soak.s_recoveries c.Soak.s_queued
    c.Soak.s_retried c.Soak.s_validation_failed c.Soak.s_race_errors
    c.Soak.s_proto_errors

let report rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\n\
    \  \"experiment\": \"soak\",\n\
    \  \"completion_gate\": 0.99,\n\
    \  \"p99_ratio_gate\": 5.0,\n\
    \  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i (label, cfg, cmp) ->
      Buffer.add_string b (row ~label ~cfg cmp);
      Buffer.add_string b (if i = n - 1 then "\n" else ",\n"))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(** The chaos soak harness: the open-loop traffic generator run over a
    long virtual-time horizon under a seeded fault plan (frame drops and
    duplicates) plus a deterministic crash/revive schedule, with the
    {!Srpc_core.Health} failure detector, the {!Srpc_core.Admission}
    overload protections (bounded queue, retry budgets, per-peer circuit
    breaker) and journal-based session recovery all armed. The bench
    gate demands >= 99% session completion, zero validation-detected
    lost updates and a p99 latency within 5x of the fault-free
    {!baseline}. See docs/ROBUSTNESS.md. *)

open Srpc_core
open Srpc_check

type config = {
  clients : int;  (** client (per-session ground) nodes, >= 1 *)
  servers : int;  (** server (worker) nodes, 2..8 *)
  rate : float;  (** session arrivals per virtual second, per client *)
  mix : Script.kind list;  (** workload kinds cycled across sessions *)
  depth : int;  (** ops per session script *)
  seed : int;
  policy : Strategy.admission_policy;
  contention : Traffic.contention;
  horizon : float;  (** virtual seconds of offered arrivals *)
  drop : float;  (** per-frame drop probability *)
  dup : float;  (** per-frame duplication probability *)
  crash_period : float;
      (** virtual seconds between planned server crashes (rotating
          through the pool); [0.] disables the crash schedule *)
  outage : float;  (** how long each crashed server stays down *)
  queue_cap : int;  (** admission conflict-queue bound *)
  retry_budget : int;  (** admission deferral budget per session id *)
  give_up : int;
      (** client-side bound on admission attempts (across recovery
          cycles) before a session is abandoned as failed *)
}

(** 6 clients x 4 servers, 0.5 arrivals/s/client over a 320 s horizon,
    1% drop, a 20 s crash period with 300 ms outages — the bench gate's
    configuration. *)
val default : config

type result = {
  s_sessions : int;
  s_committed : int;
  s_failed : int;  (** abandoned after [give_up] admission attempts *)
  s_aborts : int;  (** mid-session aborts (crashes, retry exhaustion) *)
  s_recovered : int;  (** sessions committed after at least one abort *)
  s_completion : float;  (** committed / sessions *)
  s_makespan : float;
  s_throughput : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_crashes : int;  (** chaos crash events applied *)
  s_revives : int;
  s_heartbeats : int;  (** [Stats.heartbeats_sent] *)
  s_suspicions : int;
  s_sheds : int;
  s_breaker_trips : int;
  s_recoveries : int;  (** the [Stats] counter; equals [s_recovered] *)
  s_queued : int;
  s_retried : int;
  s_validation_failed : int;  (** must be 0: no lost updates *)
  s_race_errors : int;
  s_proto_errors : int;
}

(** True when the config installs any fault machinery (drops,
    duplicates or a crash schedule) — exactly the runs that construct a
    fault plan and a health detector. *)
val chaotic : config -> bool

exception Stuck

(** [run cfg] executes the soak. When [chaotic cfg] is false no fault
    plan and no detector are constructed, so the wire path is
    byte-identical to a health-free cluster.
    @raise Stuck on scheduler deadlock or fuel exhaustion. *)
val run : config -> result

(** [baseline cfg] is [run] with drops, duplicates and the crash
    schedule all zeroed — the fault-free yardstick for the p99 gate. *)
val baseline : config -> result

type comparison = {
  chaos : result;
  fault_free : result;
  p99_ratio : float;  (** chaos p99 / fault-free p99 *)
}

val compare_runs : config -> comparison

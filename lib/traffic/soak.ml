(* srpc-soak: sustained chaos traffic with liveness detection, session
   recovery and overload protection.

   The open-loop generator from [Traffic], run over a long VIRTUAL-time
   horizon while a deterministic chaos scheduler crashes and revives
   servers and the fault plan drops frames. Three robustness layers are
   under test:

   - a [Health] failure detector probes with heartbeat frames and folds
     the simulator's crash/revive marks in, so suspicion is immediate
     for planned outages and probe-driven for message loss;
   - the [Admission] controller runs with bounded queues, per-session
     retry budgets and the per-peer circuit breaker, so sessions that
     would touch a dead server are shed with a typed [Overloaded]
     instead of timing out one by one;
   - each client JOURNALS its session's resolved op stream (the check
     harness's [Script.rop] vocabulary). A session aborted by a crash
     is not lost: once health confirms the revival the client re-admits
     under a fresh id and replays the journal from scratch. Aborts are
     all-or-nothing (nothing was committed), so replay-once is
     exactly-once — the per-root version validation at close would
     catch any doubled commit.

   Everything is metered on the simulated clock through seeded
   randomness, so one (config) names one exact execution: the same
   crashes at the same virtual instants, the same sheds, the same
   recoveries. With [drop = dup = 0] and [crash_period = 0] no fault
   plan and no detector are installed and the run is byte-identical to
   a health-free cluster ([baseline] — the fault-free yardstick the
   p99 gate divides by). *)

open Srpc_core
open Srpc_memory
open Srpc_simnet
open Srpc_analysis
open Srpc_check

type config = {
  clients : int;
  servers : int;
  rate : float;  (** session arrivals per virtual second, per client *)
  mix : Script.kind list;
  depth : int;
  seed : int;
  policy : Strategy.admission_policy;
  contention : Traffic.contention;
  horizon : float;  (** virtual seconds of offered arrivals *)
  drop : float;
  dup : float;
  crash_period : float;  (** virtual s between server crashes; 0 = none *)
  outage : float;  (** virtual s a crashed server stays down *)
  queue_cap : int;
  retry_budget : int;
  give_up : int;  (** admission attempts before the client abandons *)
}

let default =
  {
    clients = 6;
    servers = 4;
    rate = 0.5;
    mix = [ Script.KList; Script.KTree ];
    depth = 6;
    seed = 0;
    policy = Strategy.Queue_conflicts;
    contention = Traffic.Disjoint;
    horizon = 320.0;
    drop = 0.01;
    dup = 0.005;
    crash_period = 20.0;
    outage = 0.3;
    queue_cap = 64;
    retry_budget = 32;
    give_up = 40;
  }

type result = {
  s_sessions : int;
  s_committed : int;
  s_failed : int;  (** gave up after [give_up] admission attempts *)
  s_aborts : int;  (** mid-session aborts (crashes, retry exhaustion) *)
  s_recovered : int;  (** sessions committed after at least one abort *)
  s_completion : float;  (** committed / sessions *)
  s_makespan : float;
  s_throughput : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_crashes : int;  (** chaos crash events applied *)
  s_revives : int;
  s_heartbeats : int;
  s_suspicions : int;
  s_sheds : int;
  s_breaker_trips : int;
  s_recoveries : int;  (** the [Stats] counter; equals [s_recovered] *)
  s_queued : int;
  s_retried : int;
  s_validation_failed : int;
  s_race_errors : int;
  s_proto_errors : int;
}

let chaotic cfg = cfg.drop > 0.0 || cfg.dup > 0.0 || cfg.crash_period > 0.0

(* The deterministic chaos schedule: at every multiple of
   [crash_period] inside the horizon one server (rotating) crashes,
   reviving [outage] later. A sorted flat event list the driver applies
   as client timelines pass each instant. *)
type chaos = Crash_ev of int | Revive_ev of int

let chaos_schedule cfg =
  if cfg.crash_period <= 0.0 then []
  else begin
    if cfg.outage <= 0.0 || cfg.outage >= cfg.crash_period then
      invalid_arg "Soak: outage must be in (0, crash_period)";
    let rec go k acc =
      let t = cfg.crash_period *. float_of_int (k + 1) in
      if t >= cfg.horizon then List.rev acc
      else
        go (k + 1)
          ((t +. cfg.outage, Revive_ev (k mod cfg.servers))
          :: (t, Crash_ev (k mod cfg.servers))
          :: acc)
    in
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (go 0 [])
  end

(* Poisson arrivals across the whole horizon (open loop: the offered
   load never reacts to outages — sessions keep arriving during them). *)
let gen_jobs cfg ~client =
  let arr_rng = Rng.create (cfg.seed lxor ((client + 1) * 0x9e3779b9)) in
  let mixn = max 1 (List.length cfg.mix) in
  let jobs = ref [] in
  let t = ref 0.0 in
  let s = ref 0 in
  let continue = ref true in
  while !continue do
    let u = min 0.999_999 (Rng.float arr_rng) in
    t := !t +. (-.log (1.0 -. u) /. cfg.rate);
    if !t >= cfg.horizon then continue := false
    else begin
      let kind =
        if cfg.mix = [] then Script.KList
        else List.nth cfg.mix ((client + !s) mod mixn)
      in
      let script =
        Gen.session_script
          ~seed:((cfg.seed * 7919) + (client * 104729) + !s)
          ~depth:cfg.depth
          ~workers:(min 3 cfg.servers)
          ~kind ~fault:None
      in
      jobs := (!t, Script.resolve script) :: !jobs;
      incr s
    end
  done;
  List.rev !jobs

let job_footprint cfg ~client =
  let root =
    match cfg.contention with
    | Traffic.Disjoint -> Printf.sprintf "client%d" client
    | Traffic.Hot -> "hot"
  in
  Footprint.session
    ~label:(Printf.sprintf "soak[c%d]" client)
    [ { Footprint.root; path = "*"; mode = Footprint.Write } ]

type cstate = Idle | Wait | Running | Parked | Done

(* The journal is the session's whole resolved op stream; recovery is
   "re-admit under a fresh id, reset the object table, replay from the
   top". [cur_total] spans recovery cycles — the client-side give-up
   bound — while [cur_attempt] drives the backoff ladder. *)
type current = {
  mutable cur_id : int;
  cur_env : Interp.env;
  cur_arrival : float;  (** original arrival: recovery time counts *)
  cur_journal : Script.rop list;
  mutable cur_rops : Script.rop list;
  mutable cur_attempt : int;
  mutable cur_total : int;
  mutable cur_recovering : bool;  (** aborted at least once *)
}

type client = {
  cl_idx : int;
  cl_ground : Node.t;
  cl_fp : Footprint.t;
  mutable cl_peers : string list;  (** this session's server endpoints *)
  mutable cl_time : float;
  mutable cl_state : cstate;
  mutable cl_jobs : (float * Script.plan) list;
  mutable cl_current : current option;
}

exception Stuck

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let run cfg =
  if cfg.clients < 1 then invalid_arg "Soak: clients must be >= 1";
  if cfg.servers < 2 || cfg.servers > 8 then
    invalid_arg "Soak: servers must be in 2..8";
  let cluster = Cluster.create () in
  Session.set_concurrent (Cluster.session cluster) true;
  let strategy =
    Interp.strategy_table.(Gen.concurrent_strategies.(abs cfg.seed
                                                      mod Array.length
                                                           Gen
                                                           .concurrent_strategies))
  in
  let grounds =
    Array.init cfg.clients (fun c ->
        Cluster.add_node cluster ~site:(c + 1) ~strategy ())
  in
  let servers =
    List.init cfg.servers (fun s ->
        Cluster.add_node cluster
          ~site:(cfg.clients + 1 + s)
          ~arch:Interp.arch_table.(s mod Array.length Interp.arch_table)
          ~strategy ())
  in
  Srpc_workloads.Linked_list.register_types cluster;
  Srpc_workloads.Tree.register_types cluster;
  Srpc_workloads.Graph.register_types cluster;
  Srpc_workloads.Matrix.register_types cluster;
  Array.iter (fun g -> Interp.register_procs ~ground:g servers) grounds;
  let trace = Trace.create () in
  Transport.set_trace (Cluster.transport cluster) (Some trace);
  let ep node = Space_id.to_string (Node.id node) in
  let health =
    if not (chaotic cfg) then None
    else begin
      let fp = Fault_plan.create ~seed:cfg.seed () in
      if cfg.drop > 0.0 || cfg.dup > 0.0 then
        Fault_plan.set_global fp
          (Fault_plan.profile ~drop:cfg.drop ~duplicate:cfg.dup ());
      Cluster.install_faults cluster fp;
      (* the detector probes from its own (unregistered) endpoint: a
         monitor, not a node — Transport.rpc needs no src dispatcher *)
      let h =
        Health.create ~src:"monitor" ~registry:(Cluster.registry cluster)
          ~stats:(Cluster.stats cluster)
          (Cluster.transport cluster)
      in
      List.iter (fun s -> Health.watch h (ep s)) servers;
      Some h
    end
  in
  let adm =
    Admission.create ~policy:cfg.policy ~queue_cap:cfg.queue_cap
      ~retry_budget:cfg.retry_budget ?health (Cluster.stats cluster)
  in
  let health_cursor = ref 0 in
  let observe_health () =
    match health with
    | None -> ()
    | Some h -> health_cursor := Health.observe h trace ~from:!health_cursor
  in
  (* Each client sees the server pool rotated by its own index. *)
  let rotated ~client ~count =
    let n = List.length servers in
    let rec take k = function
      | _ when k = 0 -> []
      | [] -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    let rot = List.init n (fun i -> List.nth servers ((i + client) mod n)) in
    take (min count n) rot
  in
  let committed = ref 0
  and failed = ref 0
  and aborts = ref 0
  and recovered = ref 0
  and crashes = ref 0
  and revives = ref 0
  and latencies = ref [] in
  let clients =
    Array.mapi
      (fun c ground ->
        {
          cl_idx = c;
          cl_ground = ground;
          cl_fp = job_footprint cfg ~client:c;
          cl_peers = [];
          cl_time = 0.0;
          cl_state = Idle;
          cl_jobs = gen_jobs cfg ~client:c;
          cl_current = None;
        })
      grounds
  in
  let find_by_sid sid =
    let hit = ref None in
    Array.iter
      (fun cl ->
        match cl.cl_current with
        | Some cur when cur.cur_id = sid -> hit := Some cl
        | _ -> ())
      clients;
    match !hit with
    | Some cl -> cl
    | None -> invalid_arg "Soak: drain admitted an unknown session"
  in
  let start_waiters ~closer waiters =
    List.iter
      (fun (sid, _fp) ->
        let cl = find_by_sid sid in
        Node.start_admitted cl.cl_ground ~id:sid;
        cl.cl_time <- Float.max cl.cl_time closer.cl_time;
        cl.cl_state <- Running)
      waiters
  in
  let finish_session cl =
    cl.cl_current <- None;
    cl.cl_jobs <- List.tl cl.cl_jobs;
    cl.cl_state <- Idle
  in
  (* Re-probe this session's unavailable peers before asking again:
     heartbeats keep flowing while the breaker holds, and the first
     answered probe after the revival releases it. *)
  let probe_dead cl =
    match health with
    | None -> ()
    | Some h ->
      List.iter
        (fun e -> if not (Health.available h e) then ignore (Health.probe h e))
        cl.cl_peers
  in
  let request cl cur =
    observe_health ();
    cur.cur_total <- cur.cur_total + 1;
    if cur.cur_total > cfg.give_up then begin
      incr failed;
      finish_session cl
    end
    else begin
      probe_dead cl;
      match
        Node.request_admission ~peers:cl.cl_peers cl.cl_ground adm
          ~id:cur.cur_id ~footprint:cl.cl_fp
      with
      | Admission.Admitted -> cl.cl_state <- Running
      | Admission.Queued -> cl.cl_state <- Parked
      | Admission.Denied ->
        cur.cur_attempt <- cur.cur_attempt + 1;
        cl.cl_time <-
          cl.cl_time
          +. Admission.backoff_delay ~session:cur.cur_id
               ~attempt:cur.cur_attempt ~base:1e-4;
        cl.cl_state <- Wait
      | Admission.Overloaded _ ->
        (* typed shed: terminal for this request. The retry keeps the
           reserved id (a later success emits its own fresh admit mark,
           per SP009) but backs off harder than a plain denial. *)
        cur.cur_attempt <- cur.cur_attempt + 1;
        cl.cl_time <-
          cl.cl_time
          +. Admission.backoff_delay ~session:cur.cur_id
               ~attempt:cur.cur_attempt ~base:2e-3;
        cl.cl_state <- Wait
    end
  in
  (* A crash abort surrenders the admission slot and retries under a
     fresh id, replaying the journal from scratch: the abort committed
     nothing, so replay-once is exactly-once. *)
  let abort_and_recover cl cur =
    incr aborts;
    start_waiters ~closer:cl
      (Admission.close ~committed:false adm ~session:cur.cur_id);
    cur.cur_recovering <- true;
    cur.cur_id <- Node.reserve_session cl.cl_ground;
    cur.cur_rops <- cur.cur_journal;
    Hashtbl.reset cur.cur_env.Interp.e_objs;
    request cl cur
  in
  let timed cl f =
    let t0 = Cluster.now cluster in
    let r = f () in
    cl.cl_time <- cl.cl_time +. (Cluster.now cluster -. t0);
    r
  in
  let step cl =
    match cl.cl_state with
    | Done | Parked -> ()
    | Idle -> (
      match cl.cl_jobs with
      | [] -> cl.cl_state <- Done
      | (arrival, plan) :: _ ->
        cl.cl_time <- Float.max cl.cl_time arrival;
        let ws = rotated ~client:cl.cl_idx ~count:plan.Script.p_workers in
        cl.cl_peers <- List.map ep ws;
        let cur =
          {
            cur_id = Node.reserve_session cl.cl_ground;
            cur_env = Interp.make_env ~cluster ~ground:cl.cl_ground ~workers:ws;
            cur_arrival = cl.cl_time;
            cur_journal = plan.Script.p_rops;
            cur_rops = plan.Script.p_rops;
            cur_attempt = 0;
            cur_total = 0;
            cur_recovering = false;
          }
        in
        cl.cl_current <- Some cur;
        request cl cur)
    | Wait ->
      let cur = Option.get cl.cl_current in
      request cl cur
    | Running -> (
      let cur = Option.get cl.cl_current in
      match cur.cur_rops with
      | rop :: rest -> (
        cur.cur_rops <- rest;
        try timed cl (fun () -> ignore (Interp.exec_rop cur.cur_env rop))
        with Session.Session_aborted _ -> abort_and_recover cl cur)
      | [] -> (
        match timed cl (fun () -> Node.end_session_validated cl.cl_ground adm) with
        | `Committed, waiters ->
          incr committed;
          if cur.cur_recovering then begin
            incr recovered;
            Stats.incr_recoveries (Cluster.stats cluster)
          end;
          latencies := (cl.cl_time -. cur.cur_arrival) :: !latencies;
          start_waiters ~closer:cl waiters;
          finish_session cl
        | `Validation_failed, waiters ->
          start_waiters ~closer:cl waiters;
          cur.cur_id <- Node.reserve_session cl.cl_ground;
          cur.cur_rops <- cur.cur_journal;
          Hashtbl.reset cur.cur_env.Interp.e_objs;
          request cl cur
        | exception Session.Session_aborted _ -> abort_and_recover cl cur))
  in
  let events = ref (chaos_schedule cfg) in
  let apply_chaos upto =
    let rec go () =
      match !events with
      | (t, ev) :: rest when t <= upto ->
        events := rest;
        (match ev with
        | Crash_ev s ->
          incr crashes;
          Transport.crash (Cluster.transport cluster) (ep (List.nth servers s))
        | Revive_ev s ->
          incr revives;
          Transport.revive (Cluster.transport cluster) (ep (List.nth servers s)));
        go ()
      | _ -> ()
    in
    go ()
  in
  let total_jobs =
    Array.fold_left (fun acc cl -> acc + List.length cl.cl_jobs) 0 clients
  in
  let fuel = ref ((total_jobs * (cfg.depth + 16) * (cfg.give_up + 8)) + 1024) in
  let runnable () =
    let best = ref None in
    Array.iter
      (fun cl ->
        match cl.cl_state with
        | Done | Parked -> ()
        | _ -> (
          match !best with
          | Some b when b.cl_time <= cl.cl_time -> ()
          | _ -> best := Some cl))
      clients;
    !best
  in
  let all_done () = Array.for_all (fun cl -> cl.cl_state = Done) clients in
  while not (all_done ()) do
    decr fuel;
    if !fuel < 0 then raise Stuck;
    match runnable () with
    | Some cl ->
      (* planned chaos fires as the earliest live timeline crosses it *)
      apply_chaos cl.cl_time;
      step cl
    | None -> raise Stuck (* every live client parked: admission deadlock *)
  done;
  observe_health ();
  let makespan =
    Array.fold_left (fun acc cl -> Float.max acc cl.cl_time) 0.0 clients
  in
  let snap = Cluster.snapshot cluster in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let errors ds = List.length (List.filter Diagnostic.is_error ds) in
  {
    s_sessions = total_jobs;
    s_committed = !committed;
    s_failed = !failed;
    s_aborts = !aborts;
    s_recovered = !recovered;
    s_completion =
      (if total_jobs > 0 then float_of_int !committed /. float_of_int total_jobs
       else 1.0);
    s_makespan = makespan;
    s_throughput =
      (if makespan > 0.0 then float_of_int !committed /. makespan else 0.0);
    s_p50 = percentile lat 0.50;
    s_p95 = percentile lat 0.95;
    s_p99 = percentile lat 0.99;
    s_crashes = !crashes;
    s_revives = !revives;
    s_heartbeats = snap.Stats.heartbeats_sent;
    s_suspicions = snap.Stats.suspicions;
    s_sheds = snap.Stats.sheds;
    s_breaker_trips = snap.Stats.breaker_trips;
    s_recoveries = snap.Stats.recoveries;
    s_queued = snap.Stats.sessions_queued;
    s_retried = snap.Stats.sessions_retried;
    s_validation_failed = snap.Stats.validations_failed;
    s_race_errors = errors (Race_lint.check trace);
    s_proto_errors = errors (Proto_lint.check trace);
  }

(* The fault-free yardstick: the same offered load with no fault plan,
   no chaos schedule and no detector constructed — the wire path is
   byte-identical to a health-free cluster. *)
let baseline cfg = run { cfg with drop = 0.0; dup = 0.0; crash_period = 0.0 }

type comparison = { chaos : result; fault_free : result; p99_ratio : float }

let compare_runs cfg =
  let fault_free = baseline cfg in
  let chaos = run cfg in
  let p99_ratio =
    if fault_free.s_p99 > 0.0 then chaos.s_p99 /. fault_free.s_p99 else 0.0
  in
  { chaos; fault_free; p99_ratio }

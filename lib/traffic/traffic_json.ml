(* Hand-rolled JSON for BENCH_traffic.json (the bench tree stays free
   of parser dependencies, same as the other BENCH_* emitters). One row
   per (seed, comparison): the concurrent run's metrics and admission
   counters next to the serialized baseline and the speedup ratio. *)

let row ~seed ~(cfg : Traffic.config) (cmp : Traffic.comparison) =
  let c = cmp.Traffic.concurrent in
  Printf.sprintf
    "    {\"seed\": %d, \"contention\": %S, \"policy\": %S,\n\
    \     \"sessions\": %d, \"committed\": %d, \"aborted\": %d,\n\
    \     \"makespan_s\": %.6f, \"throughput_per_s\": %.3f,\n\
    \     \"serialized_throughput_per_s\": %.3f, \"speedup\": %.3f,\n\
    \     \"latency_p50_s\": %.6f, \"latency_p95_s\": %.6f, \
     \"latency_p99_s\": %.6f,\n\
    \     \"admitted\": %d, \"queued\": %d, \"denied\": %d, \"retried\": %d,\n\
    \     \"validation_failed\": %d, \"race_errors\": %d, \
     \"proto_errors\": %d}"
    seed
    (match cfg.Traffic.contention with
    | Traffic.Disjoint -> "disjoint"
    | Traffic.Hot -> "hot")
    (match cfg.Traffic.policy with
    | Srpc_core.Strategy.Queue_conflicts -> "queue"
    | Srpc_core.Strategy.Abort_retry -> "abort-retry")
    c.Traffic.r_sessions c.Traffic.r_committed c.Traffic.r_aborted
    c.Traffic.r_makespan c.Traffic.r_throughput
    cmp.Traffic.serialized.Traffic.r_throughput cmp.Traffic.speedup
    c.Traffic.r_p50 c.Traffic.r_p95 c.Traffic.r_p99 c.Traffic.r_admitted
    c.Traffic.r_queued c.Traffic.r_denied c.Traffic.r_retried
    c.Traffic.r_validation_failed c.Traffic.r_race_errors
    c.Traffic.r_proto_errors

let report ~clients ~servers ~rate ~sessions rows =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n\
    \  \"experiment\": \"traffic\",\n\
    \  \"clients\": %d,\n\
    \  \"servers\": %d,\n\
    \  \"rate_per_client_per_s\": %.1f,\n\
    \  \"sessions_per_client\": %d,\n\
    \  \"speedup_gate\": 2.0,\n\
    \  \"rows\": [\n"
    clients servers rate sessions;
  let n = List.length rows in
  List.iteri
    (fun i (seed, cfg, cmp) ->
      Buffer.add_string b (row ~seed ~cfg cmp);
      Buffer.add_string b (if i = n - 1 then "\n" else ",\n"))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

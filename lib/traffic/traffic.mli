(** srpc-traffic: the open-loop concurrent-session traffic generator.

    N client nodes (each the ground of its own sessions) drive a small
    pool of shared server nodes through the concurrent-session
    admission controller. Arrivals are Poisson in {e virtual} time:
    every random choice flows through the seeded [Rng] and time is the
    simulation's cost-model clock, so a (seed, config) pair names one
    exact execution on every machine.

    {b Time model.} The cluster has one virtual clock metering every
    operation (the simulation is single-threaded). The scheduler runs
    one resolved op at a time and charges its clock delta to the
    issuing client's private logical timeline, so concurrent clients
    overlap in logical time exactly as N independent machines would —
    the same op-atomic-interleaving soundness argument as the weave
    checker. {!run_serialized} replays the same sessions on one
    accumulated timeline; the throughput ratio ({!compare_runs})
    approaches the client count for admission-disjoint workloads and
    ~1 under full contention.

    Session bodies come from [Gen.session_script] and execute through
    [Interp.exec_rop] — the model checker's interpreter — so traffic
    can never drift from checked op semantics. [Race_lint] and
    [Proto_lint] run over the full trace as standing oracles. *)

open Srpc_core
open Srpc_check

(** Footprint shape: [Disjoint] gives every client its own datum-root
    universe (sessions admit concurrently); [Hot] points every session
    at one shared root (admission serializes: queueing or
    abort-retry, per policy). *)
type contention = Disjoint | Hot

type config = {
  clients : int;  (** client (per-session ground) nodes, >= 1 *)
  servers : int;  (** server (worker) nodes, 2..8 *)
  rate : float;  (** session arrivals per virtual second, per client *)
  mix : Script.kind list;  (** workload kinds cycled across sessions *)
  sessions_per_client : int;
  depth : int;  (** ops per session script *)
  seed : int;
  policy : Strategy.admission_policy;
  contention : contention;
}

(** 8 clients, 4 servers, 400 arrivals/s, list+tree mix, 4 sessions per
    client, queueing admission, disjoint footprints. *)
val default : config

type result = {
  r_sessions : int;
  r_committed : int;
  r_aborted : int;
  r_makespan : float;  (** virtual seconds, max over client timelines *)
  r_throughput : float;  (** committed sessions per virtual second *)
  r_p50 : float;  (** session latency percentiles, virtual seconds *)
  r_p95 : float;
  r_p99 : float;
  r_admitted : int;  (** admission counters, from {!Srpc_simnet.Stats} *)
  r_queued : int;
  r_denied : int;
  r_retried : int;
  r_validation_failed : int;
  r_race_errors : int;  (** [Race_lint] errors over the full trace *)
  r_proto_errors : int;  (** [Proto_lint] errors over the full trace *)
}

(** [run cfg] drives the full open-loop traffic run and returns its
    aggregate result. Deterministic in [cfg].
    @raise Stuck if the scheduler stops making progress. *)
val run : config -> result

(** [run_serialized cfg] replays the same session population strictly
    one at a time on a single accumulated timeline — the baseline the
    speedup gate divides by. *)
val run_serialized : config -> result

type comparison = {
  concurrent : result;
  serialized : result;
  speedup : float;  (** concurrent throughput / serialized throughput *)
}

val compare_runs : config -> comparison

(** {1 The shared-counter workload}

    The no-lost-update oracle in its purest form: one integer cell
    homed on a server; every client session reads it, bumps it and
    writes it back at close. Correct admission serializes the bumps so
    the final value equals the committed-session count. With
    [chaos:true] ([Node.chaos_admit_conflicting]) the sessions overlap:
    close-time validation must fail every loser (who retries under a
    fresh id) while Race_lint (CC101) and the protocol linter (SP008)
    flag the overlap — and the counter still ends exactly at the
    committed count. *)

type counter_outcome = {
  k_clients : int;
  k_committed : int;
  k_final : int;  (** the counter cell's closing value *)
  k_validation_failures : int;
  k_race_errors : int;
  k_proto_errors : int;
}

val run_counter :
  ?chaos:bool ->
  clients:int ->
  seed:int ->
  policy:Strategy.admission_policy ->
  unit ->
  counter_outcome

exception Stuck

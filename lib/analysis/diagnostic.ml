type severity = Info | Warning | Error

type t = {
  severity : severity;
  rule_id : string;
  space : string;
  path : string;
  message : string;
}

let make ?(space = "") ~severity ~rule_id ~path message =
  { severity; rule_id; space; path; message }

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let is_error d = d.severity = Error

let count_errors ds = List.length (List.filter is_error ds)

let compare a b =
  (* (space, rule id, location) — the stable report order shared by the
     printers and the committed repros; severity only tie-breaks
     duplicates at the same locus *)
  match String.compare a.space b.space with
  | 0 -> (
    match String.compare a.rule_id b.rule_id with
    | 0 -> (
      match String.compare a.path b.path with
      | 0 -> Int.compare (severity_rank b.severity) (severity_rank a.severity)
      | c -> c)
    | c -> c)
  | c -> c

let sort ds = List.stable_sort compare ds

let pp_severity ppf s =
  Format.pp_print_string ppf
    (match s with Info -> "info" | Warning -> "warning" | Error -> "error")

let pp ppf d =
  if String.equal d.space "" then
    Format.fprintf ppf "%a[%s] %s: %s" pp_severity d.severity d.rule_id d.path
      d.message
  else
    Format.fprintf ppf "%a[%s] %s %s: %s" pp_severity d.severity d.rule_id
      d.space d.path d.message

let pp_list ppf ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf ds

(* --- the stable rule catalogue --- *)

type rule = { id : string; default_severity : severity; title : string }

let rules =
  [
    { id = "TD001"; default_severity = Error;
      title = "dangling Named target: alias references an unregistered type" };
    { id = "TD002"; default_severity = Error;
      title = "by-value struct cycle: the type's size is infinite" };
    { id = "TD003"; default_severity = Error;
      title = "invalid array length (negative is an error, zero a warning)" };
    { id = "TD004"; default_severity = Error;
      title = "duplicate struct field name" };
    { id = "TD005"; default_severity = Warning;
      title = "cross-architecture layout divergence (size/alignment differs)" };
    { id = "TD006"; default_severity = Error;
      title = "pointer field whose pointee type is never registered" };
    { id = "TD007"; default_severity = Error;
      title = "closure hint names an absent type or field, or a pointer-free field" };
    { id = "SP001"; default_severity = Error;
      title = "more than one active thread per session (overlapping requests)" };
    { id = "SP002"; default_severity = Error;
      title = "request never replied" };
    { id = "SP003"; default_severity = Error;
      title = "wire traffic or protocol mark outside an open session" };
    { id = "SP004"; default_severity = Error;
      title = "session close: invalidation multicast not preceded by write-back" };
    { id = "SP005"; default_severity = Error;
      title = "aborted session must invalidate and must not write back" };
    { id = "SP006"; default_severity = Error;
      title = "frame from/to a crashed endpoint after its crash mark" };
    { id = "SP007"; default_severity = Error;
      title = "targeted invalidation misses a space that received a copy this session" };
    { id = "SP008"; default_severity = Error;
      title = "concurrently open sessions wrote the same datum root without a queue/abort between them" };
    { id = "SP009"; default_severity = Error;
      title = "breaker/shed discipline: no session may begin against a crashed peer or after a typed shed without re-admission" };
    { id = "SP010"; default_severity = Error;
      title = "offload-call must target a space in the session's touched footprint, never a peer crashed since before the session began" };
    { id = "CC001"; default_severity = Error;
      title = "session footprints interfere: both sessions may write the same region" };
    { id = "CC002"; default_severity = Error;
      title = "session footprints interfere: one session may write what the other reads" };
    { id = "CC003"; default_severity = Warning;
      title = "footprint widened to the whole reachable subgraph through a recursive field" };
    { id = "CC004"; default_severity = Warning;
      title = "footprint escapes through a callback/funref: effects not analyzable" };
    { id = "CC005"; default_severity = Error;
      title = "session frees a datum inside another session's footprint" };
    { id = "CC101"; default_severity = Error;
      title = "unordered write-write: two spaces wrote a datum without happens-before" };
    { id = "CC102"; default_severity = Error;
      title = "stale access: a cached copy outlived its invalidation, or a write never reached home" };
    { id = "CC103"; default_severity = Error;
      title = "access to a freed datum's region" };
  ]

let find_rule id = List.find_opt (fun r -> String.equal r.id id) rules

let pp_rules ppf () =
  List.iter
    (fun r ->
      Format.fprintf ppf "%s  %-7s  %s@." r.id
        (Format.asprintf "%a" pp_severity r.default_severity)
        r.title)
    rules

let pp_rules_markdown ppf () =
  Format.fprintf ppf "| Rule | Severity | Description |@.";
  Format.fprintf ppf "|------|----------|-------------|@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "| %s | %a | %s |@." r.id pp_severity
        r.default_severity r.title)
    rules

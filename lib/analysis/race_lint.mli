(** Dynamic happens-before race checker over recorded traces.

    Replays a {!Srpc_simnet.Trace} and checks every datum-granular
    {!Srpc_simnet.Trace.kind.Access} mark against the happens-before
    order induced by delivered frames: each space keeps a vector clock,
    joined on every delivered request and reply (a dropped frame
    induces no edge; a duplicate joins again, harmlessly, because the
    receiver's reply cache absorbs the re-execution).

    Rules (see [docs/RACES.md] for worked examples):

    - [CC101] unordered write-write: two spaces wrote the same datum
      and neither write happens-before the other.
    - [CC102] stale access, two sub-cases: (a) a space touched a cached
      copy installed during an earlier, already-closed session — the
      close-time invalidation never reached it; (b) a session committed
      while a foreign write to some datum was never applied at its home
      (the write-back was lost). A home that crashed during the session
      is exempt from (b): losing its updates is the documented abort
      semantics, not a silent race.
    - [CC103] access to a freed datum's region before any
      reallocation.

    The checker is a pure function of the event list: it never talks to
    the runtime, so committed repro traces can be replayed offline. *)

open Srpc_simnet

(** Check an explicit event list (chronological order). *)
val check_events : Trace.event list -> Diagnostic.t list

(** [check trace] = [check_events (Trace.events trace)]. *)
val check : Trace.t -> Diagnostic.t list

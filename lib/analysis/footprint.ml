(* Static session-interference analysis.

   Everything here is may-analysis over names: a region is an abstract
   (datum root, dotted field path) pair, not an address range, because
   the whole point is to judge candidate sessions before any of their
   data exists. Precision is bought with paths and sold back with the
   "*" wildcard whenever the pointer graph stops being a finite tree —
   a recursive type, a script object whose extent the plan does not
   bound, a callback that can touch anything. *)

open Srpc_types

type mode = Read | Write | Free

type region = { root : string; path : string; mode : mode }

type t = {
  label : string;
  regions : region list;
  escapes : bool;
  homes : string list;
  diags : Diagnostic.t list;
}

let mode_rank = function Read -> 0 | Write -> 1 | Free -> 2

let compare_region a b =
  let c = String.compare a.root b.root in
  if c <> 0 then c
  else
    let c = String.compare a.path b.path in
    if c <> 0 then c else compare (mode_rank a.mode) (mode_rank b.mode)

let dedup_sort regions = List.sort_uniq compare_region regions

let session ~label ?(escapes = false) ?(homes = []) regions =
  {
    label;
    regions = dedup_sort regions;
    escapes;
    homes = List.sort_uniq String.compare homes;
    diags = [];
  }

(* --- paths ---------------------------------------------------------- *)

(* A path is dotted segments from the root datum: "" is the root itself,
   "left.key" a field two hops down, and a path whose last segment is
   "*" covers the root's whole subgraph below the stem. *)

let is_wild path =
  path = "*"
  || String.length path >= 2
     && String.sub path (String.length path - 2) 2 = ".*"

let stem path =
  if path = "*" then ""
  else if is_wild path then String.sub path 0 (String.length path - 2)
  else path

let join_path prefix seg = if prefix = "" then seg else prefix ^ "." ^ seg

(* [under a b]: is [b] equal to or strictly below stem [a]? *)
let under a b =
  a = "" || a = b
  || String.length b > String.length a
     && String.sub b 0 (String.length a + 1) = a ^ "."

let regions_overlap p q =
  p.root = q.root
  &&
  if is_wild p.path && is_wild q.path then
    under (stem p.path) (stem q.path) || under (stem q.path) (stem p.path)
  else if is_wild p.path then under (stem p.path) q.path
  else if is_wild q.path then under (stem q.path) p.path
  else p.path = q.path

(* --- type-graph walk ------------------------------------------------ *)

(* Pointer leaves of a structural descriptor: (dotted path, pointee).
   Array elements share one abstract region — index distinctions are
   below this analysis's resolution — so an array of pointers is a
   single "field[]" leaf. *)
let rec pointer_leaves reg ~prefix desc acc =
  match (desc : Type_desc.t) with
  | Prim _ -> acc
  | Pointer pointee -> (prefix, pointee) :: acc
  | Array (elt, _) ->
      pointer_leaves reg ~prefix:(prefix ^ "[]") (Registry.resolve reg elt) acc
  | Struct fields ->
      List.fold_left
        (fun acc (fname, fty) ->
          pointer_leaves reg ~prefix:(join_path prefix fname)
            (Registry.resolve reg fty) acc)
        acc fields
  | Named _ -> assert false (* resolve never returns Named *)

(* The walk never recurses into a type already on the current chain:
   that edge closes a cycle, so the region below it widens to the whole
   subgraph and CC003 records the precision loss. Depth is additionally
   capped as a backstop — a deep non-recursive DAG of distinct types
   widens the same way rather than enumerating exponentially. *)
let max_depth = 32

let of_type reg ?(hints = []) ?label ~ty ~mode () =
  let root = ty in
  let label = Option.value label ~default:ty in
  let regions = ref [] and diags = ref [] in
  let emit path = regions := { root; path; mode } :: !regions in
  let widen ~path ~pointee ~via =
    emit (join_path path "*");
    diags :=
      Diagnostic.make ~severity:Warning ~rule_id:"CC003"
        ~path:(root ^ if via = "" then "" else "." ^ via)
        (Printf.sprintf
           "footprint through recursive type %s is unbounded; widened to \
            the whole reachable subgraph"
           pointee)
      :: !diags
  in
  (* the field a leaf hangs off: first dotted segment, array marker
     stripped, so hint "kids" covers leaf "kids[]" *)
  let leaf_field (path, _) =
    let seg =
      match String.index_opt path '.' with
      | Some i -> String.sub path 0 i
      | None -> path
    in
    if String.length seg >= 2 && String.sub seg (String.length seg - 2) 2 = "[]"
    then String.sub seg 0 (String.length seg - 2)
    else seg
  in
  let followed ty_name leaves =
    match List.assoc_opt ty_name hints with
    | None -> leaves
    | Some follow ->
        (* the hint declares the closure shape: only the listed pointer
           fields are part of the traversal, in the declared order *)
        List.concat_map
          (fun f -> List.filter (fun leaf -> leaf_field leaf = f) leaves)
          follow
  in
  let rec go ~chain ~path ty_name =
    emit path;
    let leaves =
      pointer_leaves reg ~prefix:""
        (Registry.resolve reg (Type_desc.Named ty_name))
        []
      |> List.rev |> followed ty_name
    in
    List.iter
      (fun (fpath, pointee) ->
        let p = join_path path fpath in
        if List.mem pointee chain then widen ~path:p ~pointee ~via:fpath
        else if List.length chain >= max_depth then
          widen ~path:p ~pointee ~via:fpath
        else go ~chain:(pointee :: chain) ~path:p pointee)
      leaves
  in
  go ~chain:[ ty ] ~path:"" ty;
  {
    label;
    regions = dedup_sort !regions;
    escapes = false;
    homes = [];
    diags = Diagnostic.sort !diags;
  }

(* --- interference --------------------------------------------------- *)

let interferes a b =
  let out = ref [] and seen = Hashtbl.create 16 in
  let pair = Printf.sprintf "%s x %s" a.label b.label in
  let emit ~severity ~rule ~locus message =
    let key = rule ^ "|" ^ locus in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out :=
        Diagnostic.make ~severity ~rule_id:rule
          ~path:(Printf.sprintf "%s (%s)" locus pair)
          message
        :: !out
    end
  in
  if a.escapes || b.escapes then
    emit ~severity:Warning ~rule:"CC004" ~locus:"callback"
      (Printf.sprintf
         "footprint of %s escapes through a callback/funref; interference \
          with %s cannot be bounded statically"
         (if a.escapes then a.label else b.label)
         (if a.escapes then b.label else a.label));
  List.iter
    (fun ra ->
      List.iter
        (fun rb ->
          if regions_overlap ra rb then
            match (ra.mode, rb.mode) with
            | Free, _ | _, Free ->
                let freer, victim =
                  if ra.mode = Free then (a.label, b.label)
                  else (b.label, a.label)
                in
                emit ~severity:Error ~rule:"CC005" ~locus:ra.root
                  (Printf.sprintf
                     "%s frees %s while it is inside %s's footprint" freer
                     ra.root victim)
            | Write, Write ->
                emit ~severity:Error ~rule:"CC001" ~locus:ra.root
                  (Printf.sprintf
                     "write-write overlap on %s between %s and %s" ra.root
                     a.label b.label)
            | Write, Read | Read, Write ->
                let writer, reader =
                  if ra.mode = Write then (a.label, b.label)
                  else (b.label, a.label)
                in
                emit ~severity:Error ~rule:"CC002" ~locus:ra.root
                  (Printf.sprintf "%s writes %s while %s reads it" writer
                     ra.root reader)
            | Read, Read -> ())
        b.regions)
    a.regions;
  Diagnostic.sort !out

(* --- printing ------------------------------------------------------- *)

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with Read -> "r" | Write -> "w" | Free -> "f")

let pp_region ppf r =
  Format.fprintf ppf "%a %s%s" pp_mode r.mode r.root
    (if r.path = "" then "" else "." ^ r.path)

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s%s:%a%a@]" t.label
    (if t.escapes then " (escapes via callback)" else "")
    (fun ppf -> function
      | [] -> ()
      | homes ->
          Format.fprintf ppf "@,homes: %s" (String.concat " " homes))
    t.homes
    (fun ppf rs ->
      List.iter (fun r -> Format.fprintf ppf "@,%a" pp_region r) rs)
    t.regions

(** Structured findings shared by the descriptor linter and the
    session-protocol verifier, plus the stable rule catalogue.

    Rule ids are stable across releases: [TD0xx] rules come from
    {!Desc_lint} (type descriptors), [SP0xx] rules from {!Proto_lint}
    (session protocol). See [docs/ANALYSIS.md] for the full catalogue
    with examples. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  rule_id : string;  (** stable catalogue id, e.g. ["TD001"] *)
  path : string;  (** locus: ["type.field"] or ["event[12]"] *)
  message : string;
}

val make : severity:severity -> rule_id:string -> path:string -> string -> t
val is_error : t -> bool
val count_errors : t list -> int

(** Orders errors before warnings before infos, then by rule id and path. *)
val compare : t -> t -> int

val sort : t list -> t list
val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

(** {1 Rule catalogue} *)

type rule = { id : string; default_severity : severity; title : string }

val rules : rule list
val find_rule : string -> rule option

(** Render the whole catalogue, one rule per line. *)
val pp_rules : Format.formatter -> unit -> unit

(** Structured findings shared by the analysis engines, plus the stable
    rule catalogue.

    Rule ids are stable across releases: [TD0xx] rules come from
    {!Desc_lint} (type descriptors), [SP0xx] rules from {!Proto_lint}
    (session protocol), [CC0xx] from {!Footprint} (static session
    interference) and [CC1xx] from {!Race_lint} (dynamic happens-before
    races). See [docs/ANALYSIS.md] and [docs/RACES.md] for the full
    catalogue with examples. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  rule_id : string;  (** stable catalogue id, e.g. ["TD001"] *)
  space : string;
      (** the address space the finding is about, [""] when the finding
          is not tied to one (descriptor rules) *)
  path : string;  (** locus: ["type.field"] or ["event[12]"] *)
  message : string;
}

val make :
  ?space:string -> severity:severity -> rule_id:string -> path:string -> string -> t

val is_error : t -> bool
val count_errors : t list -> int

(** Orders by (space, rule id, location) — deterministic across runs and
    OCaml versions; severity only tie-breaks identical loci. *)
val compare : t -> t -> int

val sort : t list -> t list
val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

(** {1 Rule catalogue} *)

type rule = { id : string; default_severity : severity; title : string }

val rules : rule list
val find_rule : string -> rule option

(** Render the whole catalogue, one rule per line. *)
val pp_rules : Format.formatter -> unit -> unit

(** Render the catalogue as a GitHub-flavored markdown table — the
    single source for the table in [docs/RULES.md] (see the runtest
    drift check). *)
val pp_rules_markdown : Format.formatter -> unit -> unit

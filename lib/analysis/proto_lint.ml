open Srpc_simnet

(* The verifier replays a trace against the paper's session model
   (section 3.1): one ground thread opens a session; the single thread
   of control moves with each request and returns with each reply, so
   outstanding requests form a stack; the session close performs the
   ground space's write-back before the invalidation multicast. *)

type state = {
  mutable session : int option;  (* open session id *)
  mutable holder : string;  (* endpoint currently holding the thread *)
  mutable stack : (string * string * string) list;
      (* outstanding (src, dst, request label) *)
  mutable wb_seen : bool;  (* write-back phase started this session *)
  mutable inv_seen : bool;  (* invalidation multicast started *)
  mutable aborted : bool;  (* the open session carries an abort mark *)
  crashed : (string, unit) Hashtbl.t;  (* endpoints past their crash mark *)
  mutable ground : string;  (* the open session's ground endpoint *)
  copy_dsts : (string, unit) Hashtbl.t;
      (* endpoints that received a data copy this session (Copy notes) *)
  inval_dsts : (string, unit) Hashtbl.t;
      (* endpoints the ground sent (or attempted) an invalidation to *)
  mutable out : Diagnostic.t list;
}

let emit ?(space = "") st idx rule_id message =
  st.out <-
    Diagnostic.make ~space ~severity:Error ~rule_id
      ~path:(Printf.sprintf "event[%d]" idx)
      message
    :: st.out

(* The reply opcode each request opcode must be answered with, when
   frame labels are present ("" = an unlabeled trace, checked only for
   the reply's existence). [Error] replies pair with anything. *)
let expected_reply = function
  | "call" -> Some "return"
  | "call-d" -> Some "return-d"
  | "fetch" -> Some "fetched"
  | "alloc-batch" -> Some "allocated"
  | "write-back" | "free-batch" | "invalidate" | "abort" | "wb-stage"
  | "wb-commit" | "wb-delta" | "wb-delta+inv" | "wb-stage-delta" ->
    Some "ack"
  | _ -> None

let check_pairing st idx ~rq_lbl ~rep_lbl =
  if not (String.equal rep_lbl "error") then
    match expected_reply rq_lbl with
    | Some want when not (String.equal rep_lbl "") && not (String.equal rep_lbl want) ->
      emit st idx "SP002"
        (Printf.sprintf "%s request answered by %s, expected %s" rq_lbl
           rep_lbl want)
    | Some _ | None -> ()

(* Frame-level close ordering (the delta-era SP004): a [Wb_delta] frame
   carrying the targeted invalidation belongs to the invalidation phase
   and must not precede the write-back mark; staged frames belong to
   phase one and must precede the commit point; a commit frame must
   follow it. *)
let check_close_order st idx ~space lbl =
  match lbl with
  | "wb-delta+inv" when not st.wb_seen ->
    emit ~space st idx "SP004"
      "invalidate-carrying delta frame before the write-back phase started"
  | ("wb-stage" | "wb-stage-delta") when st.wb_seen ->
    emit ~space st idx "SP004"
      (lbl ^ " frame after the commit point: staged data can no longer be atomic")
  | "wb-commit" when not st.wb_seen ->
    emit ~space st idx "SP004" "commit frame before the commit-point write-back mark"
  | _ -> ()

let pp_ev e = Format.asprintf "%a" Trace.pp_event e

let check_open st idx (e : Trace.event) =
  match st.session with
  | Some id -> Some id
  | None ->
    emit ~space:e.Trace.src st idx "SP003" ("traffic outside an open session: " ^ pp_ev e);
    None

(* SP006: a crashed endpoint neither sends nor receives — any frame
   naming it between its crash and revive marks is a violation. *)
let check_crashed st idx (e : Trace.event) =
  let bad ep =
    if Hashtbl.mem st.crashed ep then
      emit ~space:ep st idx "SP006"
        (Printf.sprintf "frame involves crashed endpoint %s: %s" ep (pp_ev e))
  in
  bad e.Trace.src;
  if not (String.equal e.Trace.dst e.Trace.src) then bad e.Trace.dst

let check_mark_session st idx id what =
  match st.session with
  | Some open_id when open_id <> id ->
    emit st idx "SP003"
      (Printf.sprintf "%s names session #%d but #%d is open" what id open_id)
  | Some _ | None -> ()

let step st idx (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Session_begin id -> (
    match st.session with
    | Some open_id ->
      emit st idx "SP003"
        (Printf.sprintf "session #%d begins while #%d is still open" id open_id)
    | None ->
      st.session <- Some id;
      st.holder <- e.Trace.src;
      st.ground <- e.Trace.src;
      st.stack <- [];
      st.wb_seen <- false;
      st.inv_seen <- false;
      st.aborted <- false;
      Hashtbl.reset st.copy_dsts;
      Hashtbl.reset st.inval_dsts)
  | Trace.Session_end id -> (
    check_mark_session st idx id "session end";
    match st.session with
    | None ->
      emit st idx "SP003" (Printf.sprintf "session #%d ends but none is open" id)
    | Some _ ->
      List.iter
        (fun (src, dst, _) ->
          emit ~space:src st idx "SP002"
            (Printf.sprintf "request %s -> %s never replied before session end"
               src dst))
        st.stack;
      if st.aborted then begin
        if st.wb_seen then
          emit ~space:st.ground st idx "SP005"
            (Printf.sprintf "aborted session #%d has a write-back mark" id);
        if not st.inv_seen then
          emit ~space:st.ground st idx "SP005"
            (Printf.sprintf "aborted session #%d ended without invalidation" id)
      end;
      (* SP007 applies only to sessions that recorded copy provenance
         (delta-coherency senders emit Copy notes); an aborted session
         invalidates by other means (the Abort frame) and is exempt. *)
      if (not st.aborted) && Hashtbl.length st.copy_dsts > 0 then begin
        let missed =
          Hashtbl.fold
            (fun dst () acc ->
              if Hashtbl.mem st.inval_dsts dst then acc else dst :: acc)
            st.copy_dsts []
        in
        List.iter
          (fun dst ->
            emit ~space:st.ground st idx "SP007"
              (Printf.sprintf
                 "session #%d ends without invalidating %s, which received a \
                  data copy"
                 id dst))
          (List.sort String.compare missed)
      end;
      st.session <- None;
      st.stack <- [])
  | Trace.Message Trace.Request -> (
    check_crashed st idx e;
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if not (String.equal e.Trace.src st.holder) then
        emit ~space:e.Trace.src st idx "SP001"
          (Printf.sprintf
             "overlapping threads: request from %s while the thread of \
              control is at %s"
             e.Trace.src st.holder);
      check_close_order st idx ~space:e.Trace.src e.Trace.label;
      st.stack <- (e.Trace.src, e.Trace.dst, e.Trace.label) :: st.stack;
      st.holder <- e.Trace.dst)
  | Trace.Message Trace.Reply -> (
    check_crashed st idx e;
    match check_open st idx e with
    | None -> ()
    | Some _ -> (
      match st.stack with
      | [] ->
        emit ~space:e.Trace.src st idx "SP001" ("reply with no outstanding request: " ^ pp_ev e)
      | (rq_src, rq_dst, rq_lbl) :: rest ->
        if String.equal e.Trace.src rq_dst && String.equal e.Trace.dst rq_src
        then begin
          check_pairing st idx ~rq_lbl ~rep_lbl:e.Trace.label;
          st.stack <- rest;
          st.holder <- rq_src
        end
        else
          emit ~space:e.Trace.src st idx "SP001"
            (Printf.sprintf
               "reply %s -> %s does not match the innermost request %s -> %s"
               e.Trace.src e.Trace.dst rq_src rq_dst)))
  | Trace.Write_back id -> (
    check_mark_session st idx id "write-back mark";
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if st.inv_seen then
        emit ~space:st.ground st idx "SP004"
          "write-back phase after the invalidation multicast already started";
      if st.aborted then
        emit ~space:st.ground st idx "SP005"
          "write-back phase after the session was aborted";
      st.wb_seen <- true)
  | Trace.Invalidate id -> (
    check_mark_session st idx id "invalidation mark";
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if not st.wb_seen && not st.aborted then
        emit ~space:st.ground st idx "SP004"
          "invalidation multicast not preceded by the ground space's write-back";
      st.inv_seen <- true)
  | Trace.Session_abort id -> (
    check_mark_session st idx id "abort mark";
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if st.wb_seen then
        emit ~space:st.ground st idx "SP005"
          (Printf.sprintf "session #%d aborted after its write-back began" id);
      st.aborted <- true)
  | Trace.Dropped Trace.Request ->
    (* a lost request never moved the thread of control *)
    check_crashed st idx e;
    ignore (check_open st idx e)
  | Trace.Dropped Trace.Reply -> (
    (* the callee finished but the sender never learned: the thread of
       control is back at the requester, who will retry or give up *)
    check_crashed st idx e;
    match (check_open st idx e, st.stack) with
    | Some _, (rq_src, rq_dst, _) :: rest
      when String.equal e.Trace.src rq_dst && String.equal e.Trace.dst rq_src ->
      st.stack <- rest;
      st.holder <- rq_src
    | _ -> ())
  | Trace.Dup _ ->
    (* the duplicate copy of an already-counted exchange; the receiver's
       reply cache absorbs it *)
    check_crashed st idx e;
    ignore (check_open st idx e)
  | Trace.Copy id ->
    (* provenance note: [dst] received a copy of some datum. The ground
       endpoint invalidates itself locally at close, so it is never owed
       a message. No crash check: the note witnesses bookkeeping at the
       sender, not a frame on the wire. *)
    check_mark_session st idx id "copy note";
    (match check_open st idx e with
    | None -> ()
    | Some _ ->
      if not (String.equal e.Trace.dst st.ground) then
        Hashtbl.replace st.copy_dsts e.Trace.dst ())
  | Trace.Inval_sent id ->
    (* send-attempt semantics: the ground addressed an invalidation at
       [dst]; under faults the frame itself may still be lost, which is
       the retry envelope's problem, not a directory omission. *)
    check_mark_session st idx id "invalidation-sent note";
    (match check_open st idx e with
    | None -> ()
    | Some _ -> Hashtbl.replace st.inval_dsts e.Trace.dst ())
  | Trace.Crash ep ->
    (* crash marks may appear outside sessions (planned chaos) *)
    Hashtbl.replace st.crashed ep ()
  | Trace.Revive ep -> Hashtbl.remove st.crashed ep
  | Trace.Access _ ->
    (* datum-granular witnesses belong to Race_lint, not the protocol
       state machine *)
    ()

let check_events events =
  let st =
    { session = None; holder = ""; stack = []; wb_seen = false; inv_seen = false;
      aborted = false; crashed = Hashtbl.create 4; ground = "";
      copy_dsts = Hashtbl.create 4; inval_dsts = Hashtbl.create 4; out = [] }
  in
  List.iteri (fun idx e -> step st idx e) events;
  (* a trace may stop mid-session (e.g. a live inspection), but every
     request must have been replied by the time recording stopped *)
  (* the locus is one past the last event: the violation is the absence
     of a reply, not any recorded frame *)
  let n = List.length events in
  List.iter
    (fun (src, dst, _) ->
      emit ~space:src st n "SP002"
        (Printf.sprintf "request %s -> %s never replied" src dst))
    st.stack;
  Diagnostic.sort (List.rev st.out)

let check trace = check_events (Trace.events trace)

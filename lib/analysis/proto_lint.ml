open Srpc_simnet

(* The verifier replays a trace against the paper's session model
   (section 3.1): one ground thread opens a session; the single thread
   of control moves with each request and returns with each reply, so
   outstanding requests form a stack; the session close performs the
   ground space's write-back before the invalidation multicast. *)

type state = {
  mutable session : int option;  (* open session id *)
  mutable holder : string;  (* endpoint currently holding the thread *)
  mutable stack : (string * string * string) list;
      (* outstanding (src, dst, request label) *)
  mutable wb_seen : bool;  (* write-back phase started this session *)
  mutable inv_seen : bool;  (* invalidation multicast started *)
  mutable aborted : bool;  (* the open session carries an abort mark *)
  crashed : (string, unit) Hashtbl.t;  (* endpoints past their crash mark *)
  mutable ground : string;  (* the open session's ground endpoint *)
  copy_dsts : (string, unit) Hashtbl.t;
      (* endpoints that received a data copy this session (Copy notes) *)
  inval_dsts : (string, unit) Hashtbl.t;
      (* endpoints the ground sent (or attempted) an invalidation to *)
  touched : (string, unit) Hashtbl.t;
      (* spaces whose data the session's footprint covers, harvested
         from the space prefix of Access datums ("space/addr") — the
         set an offload-call may legitimately target (SP010) *)
  dead_at_begin : (string, unit) Hashtbl.t;
      (* endpoints already past their crash mark when the open session
         began *)
  mutable out : Diagnostic.t list;
}

(* The home-space prefix of a datum rendered "space/addr"; wildcard
   footprints ("*") and malformed datums carry no space. *)
let datum_space datum =
  match String.index_opt datum '/' with
  | Some i when i > 0 -> Some (String.sub datum 0 i)
  | _ -> None

let emit ?(space = "") st idx rule_id message =
  st.out <-
    Diagnostic.make ~space ~severity:Error ~rule_id
      ~path:(Printf.sprintf "event[%d]" idx)
      message
    :: st.out

(* The reply opcode each request opcode must be answered with, when
   frame labels are present ("" = an unlabeled trace, checked only for
   the reply's existence). [Error] replies pair with anything. *)
let expected_reply = function
  | "call" -> Some "return"
  | "call-d" -> Some "return-d"
  | "offload-call" -> Some "offload-return"
  | "fetch" -> Some "fetched"
  | "alloc-batch" -> Some "allocated"
  | "write-back" | "free-batch" | "invalidate" | "abort" | "wb-stage"
  | "wb-commit" | "wb-delta" | "wb-delta+inv" | "wb-stage-delta" ->
    Some "ack"
  | _ -> None

let check_pairing st idx ~rq_lbl ~rep_lbl =
  if not (String.equal rep_lbl "error") then
    match expected_reply rq_lbl with
    | Some want when not (String.equal rep_lbl "") && not (String.equal rep_lbl want) ->
      emit st idx "SP002"
        (Printf.sprintf "%s request answered by %s, expected %s" rq_lbl
           rep_lbl want)
    | Some _ | None -> ()

(* Frame-level close ordering (the delta-era SP004): a [Wb_delta] frame
   carrying the targeted invalidation belongs to the invalidation phase
   and must not precede the write-back mark; staged frames belong to
   phase one and must precede the commit point; a commit frame must
   follow it. *)
let check_close_order st idx ~space lbl =
  match lbl with
  | "wb-delta+inv" when not st.wb_seen ->
    emit ~space st idx "SP004"
      "invalidate-carrying delta frame before the write-back phase started"
  | ("wb-stage" | "wb-stage-delta") when st.wb_seen ->
    emit ~space st idx "SP004"
      (lbl ^ " frame after the commit point: staged data can no longer be atomic")
  | "wb-commit" when not st.wb_seen ->
    emit ~space st idx "SP004" "commit frame before the commit-point write-back mark"
  | _ -> ()

let pp_ev e = Format.asprintf "%a" Trace.pp_event e

(* Heartbeat exchanges belong to the failure detector, not to any
   session: they are exempt from session attribution, thread-of-control
   and pairing checks in both machines. A live trace only ever carries
   them between live endpoints (the transport raises before recording a
   frame that names a crashed peer). *)
let is_hb_label lbl = String.equal lbl "hb" || String.equal lbl "hb-ack"

let check_open st idx (e : Trace.event) =
  match st.session with
  | Some id -> Some id
  | None ->
    emit ~space:e.Trace.src st idx "SP003" ("traffic outside an open session: " ^ pp_ev e);
    None

(* SP006: a crashed endpoint neither sends nor receives — any frame
   naming it between its crash and revive marks is a violation. *)
let check_crashed st idx (e : Trace.event) =
  let bad ep =
    if Hashtbl.mem st.crashed ep then
      emit ~space:ep st idx "SP006"
        (Printf.sprintf "frame involves crashed endpoint %s: %s" ep (pp_ev e))
  in
  bad e.Trace.src;
  if not (String.equal e.Trace.dst e.Trace.src) then bad e.Trace.dst

let check_mark_session st idx id what =
  match st.session with
  | Some open_id when open_id <> id ->
    emit st idx "SP003"
      (Printf.sprintf "%s names session #%d but #%d is open" what id open_id)
  | Some _ | None -> ()

let step st idx (e : Trace.event) =
  match e.Trace.kind with
  | (Trace.Message _ | Trace.Dropped _ | Trace.Dup _)
    when is_hb_label e.Trace.label ->
    ()
  | Trace.Session_begin id -> (
    match st.session with
    | Some open_id ->
      emit st idx "SP003"
        (Printf.sprintf "session #%d begins while #%d is still open" id open_id)
    | None ->
      st.session <- Some id;
      st.holder <- e.Trace.src;
      st.ground <- e.Trace.src;
      st.stack <- [];
      st.wb_seen <- false;
      st.inv_seen <- false;
      st.aborted <- false;
      Hashtbl.reset st.copy_dsts;
      Hashtbl.reset st.inval_dsts;
      Hashtbl.reset st.touched;
      (* the ground space's own heap is always in the footprint *)
      Hashtbl.replace st.touched e.Trace.src ();
      Hashtbl.reset st.dead_at_begin;
      Hashtbl.iter
        (fun ep () -> Hashtbl.replace st.dead_at_begin ep ())
        st.crashed)
  | Trace.Session_end id -> (
    check_mark_session st idx id "session end";
    match st.session with
    | None ->
      emit st idx "SP003" (Printf.sprintf "session #%d ends but none is open" id)
    | Some _ ->
      List.iter
        (fun (src, dst, _) ->
          emit ~space:src st idx "SP002"
            (Printf.sprintf "request %s -> %s never replied before session end"
               src dst))
        st.stack;
      if st.aborted then begin
        if st.wb_seen then
          emit ~space:st.ground st idx "SP005"
            (Printf.sprintf "aborted session #%d has a write-back mark" id);
        if not st.inv_seen then
          emit ~space:st.ground st idx "SP005"
            (Printf.sprintf "aborted session #%d ended without invalidation" id)
      end;
      (* SP007 applies only to sessions that recorded copy provenance
         (delta-coherency senders emit Copy notes); an aborted session
         invalidates by other means (the Abort frame) and is exempt. *)
      if (not st.aborted) && Hashtbl.length st.copy_dsts > 0 then begin
        let missed =
          Hashtbl.fold
            (fun dst () acc ->
              if Hashtbl.mem st.inval_dsts dst then acc else dst :: acc)
            st.copy_dsts []
        in
        List.iter
          (fun dst ->
            emit ~space:st.ground st idx "SP007"
              (Printf.sprintf
                 "session #%d ends without invalidating %s, which received a \
                  data copy"
                 id dst))
          (List.sort String.compare missed)
      end;
      st.session <- None;
      st.stack <- [])
  | Trace.Message Trace.Request -> (
    check_crashed st idx e;
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if not (String.equal e.Trace.src st.holder) then
        emit ~space:e.Trace.src st idx "SP001"
          (Printf.sprintf
             "overlapping threads: request from %s while the thread of \
              control is at %s"
             e.Trace.src st.holder);
      check_close_order st idx ~space:e.Trace.src e.Trace.label;
      (* SP010: a traversal plan may only be shipped to a space whose
         data the session has already touched (the client marks the
         root datum before framing the call), and never to a peer that
         was dead before the session began and has not revived. *)
      if String.equal e.Trace.label "offload-call" then begin
        if
          Hashtbl.mem st.dead_at_begin e.Trace.dst
          && Hashtbl.mem st.crashed e.Trace.dst
        then
          emit ~space:e.Trace.dst st idx "SP010"
            (Printf.sprintf
               "offload-call targets %s, which was crashed when the session \
                began"
               e.Trace.dst)
        else if
          (not (String.equal e.Trace.dst st.ground))
          && not (Hashtbl.mem st.touched e.Trace.dst)
        then
          emit ~space:e.Trace.dst st idx "SP010"
            (Printf.sprintf
               "offload-call into %s but the session holds no footprint \
                there (no datum of that space was touched)"
               e.Trace.dst)
      end;
      st.stack <- (e.Trace.src, e.Trace.dst, e.Trace.label) :: st.stack;
      st.holder <- e.Trace.dst)
  | Trace.Message Trace.Reply -> (
    check_crashed st idx e;
    match check_open st idx e with
    | None -> ()
    | Some _ -> (
      match st.stack with
      | [] ->
        emit ~space:e.Trace.src st idx "SP001" ("reply with no outstanding request: " ^ pp_ev e)
      | (rq_src, rq_dst, rq_lbl) :: rest ->
        if String.equal e.Trace.src rq_dst && String.equal e.Trace.dst rq_src
        then begin
          check_pairing st idx ~rq_lbl ~rep_lbl:e.Trace.label;
          st.stack <- rest;
          st.holder <- rq_src
        end
        else
          emit ~space:e.Trace.src st idx "SP001"
            (Printf.sprintf
               "reply %s -> %s does not match the innermost request %s -> %s"
               e.Trace.src e.Trace.dst rq_src rq_dst)))
  | Trace.Write_back id -> (
    check_mark_session st idx id "write-back mark";
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if st.inv_seen then
        emit ~space:st.ground st idx "SP004"
          "write-back phase after the invalidation multicast already started";
      if st.aborted then
        emit ~space:st.ground st idx "SP005"
          "write-back phase after the session was aborted";
      st.wb_seen <- true)
  | Trace.Invalidate id -> (
    check_mark_session st idx id "invalidation mark";
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if not st.wb_seen && not st.aborted then
        emit ~space:st.ground st idx "SP004"
          "invalidation multicast not preceded by the ground space's write-back";
      st.inv_seen <- true)
  | Trace.Session_abort id -> (
    check_mark_session st idx id "abort mark";
    match check_open st idx e with
    | None -> ()
    | Some _ ->
      if st.wb_seen then
        emit ~space:st.ground st idx "SP005"
          (Printf.sprintf "session #%d aborted after its write-back began" id);
      st.aborted <- true)
  | Trace.Dropped Trace.Request ->
    (* a lost request never moved the thread of control *)
    check_crashed st idx e;
    ignore (check_open st idx e)
  | Trace.Dropped Trace.Reply -> (
    (* the callee finished but the sender never learned: the thread of
       control is back at the requester, who will retry or give up *)
    check_crashed st idx e;
    match (check_open st idx e, st.stack) with
    | Some _, (rq_src, rq_dst, _) :: rest
      when String.equal e.Trace.src rq_dst && String.equal e.Trace.dst rq_src ->
      st.stack <- rest;
      st.holder <- rq_src
    | _ -> ())
  | Trace.Dup _ ->
    (* the duplicate copy of an already-counted exchange; the receiver's
       reply cache absorbs it *)
    check_crashed st idx e;
    ignore (check_open st idx e)
  | Trace.Copy id ->
    (* provenance note: [dst] received a copy of some datum. The ground
       endpoint invalidates itself locally at close, so it is never owed
       a message. No crash check: the note witnesses bookkeeping at the
       sender, not a frame on the wire. *)
    check_mark_session st idx id "copy note";
    (match check_open st idx e with
    | None -> ()
    | Some _ ->
      if not (String.equal e.Trace.dst st.ground) then
        Hashtbl.replace st.copy_dsts e.Trace.dst ())
  | Trace.Inval_sent id ->
    (* send-attempt semantics: the ground addressed an invalidation at
       [dst]; under faults the frame itself may still be lost, which is
       the retry envelope's problem, not a directory omission. *)
    check_mark_session st idx id "invalidation-sent note";
    (match check_open st idx e with
    | None -> ()
    | Some _ -> Hashtbl.replace st.inval_dsts e.Trace.dst ())
  | Trace.Crash ep ->
    (* crash marks may appear outside sessions (planned chaos) *)
    Hashtbl.replace st.crashed ep ()
  | Trace.Revive ep -> Hashtbl.remove st.crashed ep
  | Trace.Access { datum; _ } -> (
    (* datum-granular race analysis belongs to Race_lint; the protocol
       machine only harvests the footprint — the space prefix of each
       touched datum — which bounds where offload-calls may go (SP010) *)
    match datum_space datum with
    | Some sp -> Hashtbl.replace st.touched sp ()
    | None -> ())
  | Trace.Session_admit id | Trace.Session_queued id | Trace.Session_shed id ->
    (* admission marks only appear in concurrent traces, which are
       verified by the multiplexed machine below; reaching one here
       means the trace mixed modes *)
    emit st idx "SP003"
      (Printf.sprintf
         "admission mark for session #%d in a single-session trace" id)

let check_events_single events =
  let st =
    { session = None; holder = ""; stack = []; wb_seen = false; inv_seen = false;
      aborted = false; crashed = Hashtbl.create 4; ground = "";
      copy_dsts = Hashtbl.create 4; inval_dsts = Hashtbl.create 4;
      touched = Hashtbl.create 8; dead_at_begin = Hashtbl.create 4; out = [] }
  in
  List.iteri (fun idx e -> step st idx e) events;
  (* a trace may stop mid-session (e.g. a live inspection), but every
     request must have been replied by the time recording stopped *)
  (* the locus is one past the last event: the violation is the absence
     of a reply, not any recorded frame *)
  let n = List.length events in
  List.iter
    (fun (src, dst, _) ->
      emit ~space:src st n "SP002"
        (Printf.sprintf "request %s -> %s never replied" src dst))
    st.stack;
  Diagnostic.sort (List.rev st.out)

(* --- the multiplexed machine for concurrent-session traces ---

   When the admission controller is active, several sessions may be
   legitimately open at once; each one is preceded by a [Session_admit]
   mark. The single-session checks above (SP001/SP002/SP004/SP005/SP007)
   still hold *per session*, so the machine keyed on session ids runs a
   private substate for each. Frames do not carry session ids in the
   trace, so requests are attributed to the unique open session whose
   thread of control rests at the sender — sound here because the
   simulated interleaving is op-atomic (frames of different sessions
   never interleave inside one nested call chain).

   SP008 is the concurrent-era safety rule: two sessions that are open
   at the same time must never both write the same datum root. A
   correct admission controller prevents this by queueing or
   aborting-for-retry the conflicting session ([Session_queued]) until
   the holder closes, so a violation witnesses a mis-admission. *)

type sess = {
  x_id : int;
  mutable x_holder : string;
  mutable x_stack : (string * string * string) list;
  mutable x_wb_seen : bool;
  mutable x_inv_seen : bool;
  mutable x_aborted : bool;
  x_ground : string;
  x_copy_dsts : (string, unit) Hashtbl.t;
  x_inval_dsts : (string, unit) Hashtbl.t;
  x_writes : (string, unit) Hashtbl.t;  (* datum roots written so far *)
  x_touched : (string, unit) Hashtbl.t;
      (* spaces in this session's footprint (datum space prefixes),
         bounding offload-call destinations (SP010) *)
  x_dead_at_begin : (string, unit) Hashtbl.t;
      (* endpoints already past their crash mark when this session began
         — frames to one of them witness a breaker failure (SP009) *)
}

type mstate = {
  opened : (int, sess) Hashtbl.t;
  m_admitted : (int, unit) Hashtbl.t;  (* ids carrying a Session_admit mark *)
  m_shed : (int, unit) Hashtbl.t;
      (* ids whose latest admission outcome was a typed shed: terminal
         until a fresh Session_admit (SP009) *)
  m_crashed : (string, unit) Hashtbl.t;
  mutable m_out : Diagnostic.t list;
}

let memit ?(space = "") m idx rule_id message =
  m.m_out <-
    Diagnostic.make ~space ~severity:Error ~rule_id
      ~path:(Printf.sprintf "event[%d]" idx)
      message
    :: m.m_out

let mcheck_pairing m idx ~rq_lbl ~rep_lbl =
  if not (String.equal rep_lbl "error") then
    match expected_reply rq_lbl with
    | Some want
      when not (String.equal rep_lbl "") && not (String.equal rep_lbl want) ->
      memit m idx "SP002"
        (Printf.sprintf "%s request answered by %s, expected %s" rq_lbl rep_lbl
           want)
    | Some _ | None -> ()

let mcheck_close_order m idx ~space s lbl =
  match lbl with
  | "wb-delta+inv" when not s.x_wb_seen ->
    memit ~space m idx "SP004"
      "invalidate-carrying delta frame before the write-back phase started"
  | ("wb-stage" | "wb-stage-delta") when s.x_wb_seen ->
    memit ~space m idx "SP004"
      (lbl ^ " frame after the commit point: staged data can no longer be atomic")
  | "wb-commit" when not s.x_wb_seen ->
    memit ~space m idx "SP004"
      "commit frame before the commit-point write-back mark"
  | _ -> ()

let mcheck_crashed m idx (e : Trace.event) =
  let bad ep =
    if Hashtbl.mem m.m_crashed ep then
      memit ~space:ep m idx "SP006"
        (Printf.sprintf "frame involves crashed endpoint %s: %s" ep (pp_ev e))
  in
  bad e.Trace.src;
  if not (String.equal e.Trace.dst e.Trace.src) then bad e.Trace.dst

(* The open session whose thread of control rests at [ep], if unique. *)
let holder_session m ep =
  Hashtbl.fold
    (fun _ s acc ->
      if String.equal s.x_holder ep then s :: acc else acc)
    m.opened []
  |> function
  | [ s ] -> Some s
  | _ -> None

let find_sess m idx id what =
  match Hashtbl.find_opt m.opened id with
  | Some s -> Some s
  | None ->
    memit m idx "SP003"
      (Printf.sprintf "%s names session #%d, which is not open" what id);
    None

let close_sess m idx id (s : sess) =
  List.iter
    (fun (src, dst, _) ->
      memit ~space:src m idx "SP002"
        (Printf.sprintf "request %s -> %s never replied before session end" src
           dst))
    s.x_stack;
  if s.x_aborted then begin
    if s.x_wb_seen then
      memit ~space:s.x_ground m idx "SP005"
        (Printf.sprintf "aborted session #%d has a write-back mark" id);
    if not s.x_inv_seen then
      memit ~space:s.x_ground m idx "SP005"
        (Printf.sprintf "aborted session #%d ended without invalidation" id)
  end;
  if (not s.x_aborted) && Hashtbl.length s.x_copy_dsts > 0 then begin
    let missed =
      Hashtbl.fold
        (fun dst () acc ->
          if Hashtbl.mem s.x_inval_dsts dst then acc else dst :: acc)
        s.x_copy_dsts []
    in
    List.iter
      (fun dst ->
        memit ~space:s.x_ground m idx "SP007"
          (Printf.sprintf
             "session #%d ends without invalidating %s, which received a data \
              copy"
             id dst))
      (List.sort String.compare missed)
  end;
  Hashtbl.remove m.opened id

let step_multi m idx (e : Trace.event) =
  match e.Trace.kind with
  | (Trace.Message _ | Trace.Dropped _ | Trace.Dup _)
    when is_hb_label e.Trace.label ->
    ()
  | Trace.Session_admit id ->
    Hashtbl.replace m.m_admitted id ();
    Hashtbl.remove m.m_shed id
  | Trace.Session_queued _ ->
    (* a deferral: the session is not open, nothing to track — its later
       admission carries its own Session_admit mark *)
    ()
  | Trace.Session_shed id ->
    (* the typed rejection: terminal for this attempt. A shed of an open
       session is nonsense — the controller refused something it had
       already admitted. *)
    if Hashtbl.mem m.opened id then
      memit m idx "SP009"
        (Printf.sprintf "session #%d shed while it is open" id);
    Hashtbl.replace m.m_shed id ();
    Hashtbl.remove m.m_admitted id
  | Trace.Session_begin id ->
    if Hashtbl.mem m.opened id then
      memit m idx "SP003"
        (Printf.sprintf "session #%d begins but is already open" id)
    else begin
      if Hashtbl.mem m.m_shed id then
        memit m idx "SP009"
          (Printf.sprintf
             "session #%d begins after being shed: a typed rejection is \
              terminal until a fresh admission"
             id);
      (if (not (Hashtbl.mem m.m_admitted id)) && Hashtbl.length m.opened > 0
       then
         let open_id = Hashtbl.fold (fun k _ _ -> Some k) m.opened None in
         match open_id with
         | Some open_id ->
           memit m idx "SP003"
             (Printf.sprintf
                "session #%d begins while #%d is still open (no admission \
                 mark)"
                id open_id)
         | None -> ());
      let dead = Hashtbl.create 4 in
      Hashtbl.iter (fun ep () -> Hashtbl.replace dead ep ()) m.m_crashed;
      let touched = Hashtbl.create 8 in
      (* the ground space's own heap is always in the footprint *)
      Hashtbl.replace touched e.Trace.src ();
      Hashtbl.replace m.opened id
        {
          x_id = id;
          x_holder = e.Trace.src;
          x_stack = [];
          x_wb_seen = false;
          x_inv_seen = false;
          x_aborted = false;
          x_ground = e.Trace.src;
          x_copy_dsts = Hashtbl.create 4;
          x_inval_dsts = Hashtbl.create 4;
          x_writes = Hashtbl.create 8;
          x_touched = touched;
          x_dead_at_begin = dead;
        }
    end
  | Trace.Session_end id -> (
    match find_sess m idx id "session end" with
    | None -> ()
    | Some s -> close_sess m idx id s)
  | Trace.Message Trace.Request -> (
    mcheck_crashed m idx e;
    match holder_session m e.Trace.src with
    | Some s ->
      (* SP009 (breaker): the session targets a peer that was already
         crashed when it began and has not revived since — admission
         should have refused it. A mid-session crash is SP006's
         territory, not a breaker failure. *)
      if
        Hashtbl.mem s.x_dead_at_begin e.Trace.dst
        && Hashtbl.mem m.m_crashed e.Trace.dst
      then
        memit ~space:e.Trace.dst m idx "SP009"
          (Printf.sprintf
             "session #%d targets %s, which was crashed when the session \
              began: the circuit breaker must hold until revival"
             s.x_id e.Trace.dst);
      (* SP010: an offload-call may only target a space whose data this
         session's footprint covers, and never a peer dead since before
         the session began (see the single-session machine). *)
      if String.equal e.Trace.label "offload-call" then begin
        if
          Hashtbl.mem s.x_dead_at_begin e.Trace.dst
          && Hashtbl.mem m.m_crashed e.Trace.dst
        then
          memit ~space:e.Trace.dst m idx "SP010"
            (Printf.sprintf
               "session #%d offload-call targets %s, which was crashed when \
                the session began"
               s.x_id e.Trace.dst)
        else if
          (not (String.equal e.Trace.dst s.x_ground))
          && not (Hashtbl.mem s.x_touched e.Trace.dst)
        then
          memit ~space:e.Trace.dst m idx "SP010"
            (Printf.sprintf
               "session #%d offload-call into %s but the session holds no \
                footprint there (no datum of that space was touched)"
               s.x_id e.Trace.dst)
      end;
      mcheck_close_order m idx ~space:e.Trace.src s e.Trace.label;
      s.x_stack <- (e.Trace.src, e.Trace.dst, e.Trace.label) :: s.x_stack;
      s.x_holder <- e.Trace.dst
    | None ->
      if Hashtbl.length m.opened = 0 then
        memit ~space:e.Trace.src m idx "SP003"
          ("traffic outside an open session: " ^ pp_ev e)
      else
        memit ~space:e.Trace.src m idx "SP001"
          (Printf.sprintf
             "request from %s, which holds no open session's thread of control"
             e.Trace.src))
  | Trace.Message Trace.Reply -> (
    mcheck_crashed m idx e;
    match holder_session m e.Trace.src with
    | None ->
      if Hashtbl.length m.opened = 0 then
        memit ~space:e.Trace.src m idx "SP003"
          ("traffic outside an open session: " ^ pp_ev e)
      else
        memit ~space:e.Trace.src m idx "SP001"
          ("reply with no outstanding request: " ^ pp_ev e)
    | Some s -> (
      match s.x_stack with
      | [] ->
        memit ~space:e.Trace.src m idx "SP001"
          ("reply with no outstanding request: " ^ pp_ev e)
      | (rq_src, rq_dst, rq_lbl) :: rest ->
        if String.equal e.Trace.src rq_dst && String.equal e.Trace.dst rq_src
        then begin
          mcheck_pairing m idx ~rq_lbl ~rep_lbl:e.Trace.label;
          s.x_stack <- rest;
          s.x_holder <- rq_src
        end
        else
          memit ~space:e.Trace.src m idx "SP001"
            (Printf.sprintf
               "reply %s -> %s does not match the innermost request %s -> %s"
               e.Trace.src e.Trace.dst rq_src rq_dst)))
  | Trace.Write_back id -> (
    match find_sess m idx id "write-back mark" with
    | None -> ()
    | Some s ->
      if s.x_inv_seen then
        memit ~space:s.x_ground m idx "SP004"
          "write-back phase after the invalidation multicast already started";
      if s.x_aborted then
        memit ~space:s.x_ground m idx "SP005"
          "write-back phase after the session was aborted";
      s.x_wb_seen <- true)
  | Trace.Invalidate id -> (
    match find_sess m idx id "invalidation mark" with
    | None -> ()
    | Some s ->
      if (not s.x_wb_seen) && not s.x_aborted then
        memit ~space:s.x_ground m idx "SP004"
          "invalidation multicast not preceded by the ground space's write-back";
      s.x_inv_seen <- true)
  | Trace.Session_abort id -> (
    match find_sess m idx id "abort mark" with
    | None -> ()
    | Some s ->
      if s.x_wb_seen then
        memit ~space:s.x_ground m idx "SP005"
          (Printf.sprintf "session #%d aborted after its write-back began" id);
      s.x_aborted <- true)
  | Trace.Dropped Trace.Request -> mcheck_crashed m idx e
  | Trace.Dropped Trace.Reply -> (
    mcheck_crashed m idx e;
    match holder_session m e.Trace.src with
    | Some s -> (
      match s.x_stack with
      | (rq_src, rq_dst, _) :: rest
        when String.equal e.Trace.src rq_dst && String.equal e.Trace.dst rq_src
        ->
        s.x_stack <- rest;
        s.x_holder <- rq_src
      | _ -> ())
    | None -> ())
  | Trace.Dup _ -> mcheck_crashed m idx e
  | Trace.Copy id -> (
    match find_sess m idx id "copy note" with
    | None -> ()
    | Some s ->
      if not (String.equal e.Trace.dst s.x_ground) then
        Hashtbl.replace s.x_copy_dsts e.Trace.dst ())
  | Trace.Inval_sent id -> (
    match find_sess m idx id "invalidation-sent note" with
    | None -> ()
    | Some s -> Hashtbl.replace s.x_inval_dsts e.Trace.dst ())
  | Trace.Crash ep -> Hashtbl.replace m.m_crashed ep ()
  | Trace.Revive ep -> Hashtbl.remove m.m_crashed ep
  | Trace.Access { session; datum; akind = Trace.Acc_write } -> (
    (* SP008: a write names its session, so overlap detection is exact.
       Aborted sessions discard their writes and are exempt. *)
    match Hashtbl.find_opt m.opened session with
    | None -> ()
    | Some s ->
      (match datum_space datum with
      | Some sp -> Hashtbl.replace s.x_touched sp ()
      | None -> ());
      Hashtbl.replace s.x_writes datum ();
      if not s.x_aborted then
        Hashtbl.iter
          (fun other_id other ->
            if
              other_id <> session
              && (not other.x_aborted)
              && Hashtbl.mem other.x_writes datum
            then
              memit ~space:e.Trace.src m idx "SP008"
                (Printf.sprintf
                   "sessions #%d and #%d are concurrently open and both \
                    wrote %s (conflicting admission: no queue/abort \
                    separates them)"
                   other_id session datum))
          m.opened)
  | Trace.Access { session; datum; _ } -> (
    (* non-write accesses still widen the session's footprint (SP010) *)
    match Hashtbl.find_opt m.opened session with
    | None -> ()
    | Some s -> (
      match datum_space datum with
      | Some sp -> Hashtbl.replace s.x_touched sp ()
      | None -> ()))

let check_events_multi events =
  let m =
    {
      opened = Hashtbl.create 8;
      m_admitted = Hashtbl.create 8;
      m_shed = Hashtbl.create 8;
      m_crashed = Hashtbl.create 4;
      m_out = [];
    }
  in
  List.iteri (fun idx e -> step_multi m idx e) events;
  let n = List.length events in
  Hashtbl.iter
    (fun _ s ->
      List.iter
        (fun (src, dst, _) ->
          memit ~space:src m n "SP002"
            (Printf.sprintf "request %s -> %s never replied" src dst))
        s.x_stack)
    m.opened;
  Diagnostic.sort (List.rev m.m_out)

(* Traces that carry admission marks were produced under the concurrent
   admission controller and are verified by the multiplexed machine;
   everything else takes the historical single-session machine, whose
   diagnostics (messages and order) are unchanged. *)
let check_events events =
  let concurrent =
    List.exists
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Session_admit _ | Trace.Session_queued _ | Trace.Session_shed _
          ->
          true
        | _ -> false)
      events
  in
  if concurrent then check_events_multi events else check_events_single events

let check trace = check_events (Trace.events trace)

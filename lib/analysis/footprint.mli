(** Static session-footprint analysis — the interference half of the
    CC-series rules.

    A footprint is a may-read / may-write / may-free set of abstract
    regions, each a (datum root, field path) pair. Two sources feed it:

    - {!of_type} walks a registered type's pointer graph and computes
      every region a traversal rooted at that type may touch. A pointee
      type already on the walk's path is a recursive field: the region
      widens to the whole reachable subgraph ([path.*]) and rule
      [CC003] records the precision loss. Closure-shape hints (the same
      [(type, follow-fields)] view {!Desc_lint} takes) bound the walk
      to the programmer-declared shape.
    - [Srpc_check.Plan_footprint] lowers a resolved check-script plan
      to one footprint per session, with object-granular regions.

    {!interferes} compares two footprints and emits:

    - [CC001] both sessions may write an overlapping region
    - [CC002] one session may write what the other reads
    - [CC004] a footprint escapes through a callback/funref — its
      effects are not analyzable, so interference cannot be bounded
      (warning)
    - [CC005] one session frees a datum inside the other's footprint

    PR 7's concurrent-session admission will consult exactly this
    predicate: two candidate sessions may overlap in time only when
    [interferes] returns no errors. See [docs/RACES.md]. *)

open Srpc_types

type mode = Read | Write | Free

(** An abstract region: [root] names a datum root (a type name for
    {!of_type}, ["obj#N"] for script plans); [path] is a dotted field
    path from it — [""] the root datum itself, a trailing ["*"] the
    whole subgraph below that point. *)
type region = { root : string; path : string; mode : mode }

type t = {
  label : string;  (** e.g. ["session[2]"] or the root type name *)
  regions : region list;  (** sorted, deduplicated *)
  escapes : bool;
      (** a callback/funref crosses the session boundary somewhere in
          this footprint's extent *)
  homes : string list;
      (** spaces owning data in this footprint (script plans; empty for
          type walks) *)
  diags : Diagnostic.t list;
      (** CC003 widenings discovered while computing *)
}

(** Assemble a footprint from explicit regions (the script-plan path). *)
val session :
  label:string -> ?escapes:bool -> ?homes:string list -> region list -> t

(** [of_type reg ~ty ~mode] walks [ty]'s pointer graph. [hints] uses
    {!Desc_lint}'s convention: [(type, follow-field-list)] — a hinted
    type traverses only the listed pointer fields (the declared closure
    shape); unhinted types traverse all pointer fields. [label]
    defaults to [ty].
    @raise Registry.Unknown_type on a dangling descriptor. *)
val of_type :
  Registry.t ->
  ?hints:(string * string list) list ->
  ?label:string ->
  ty:string ->
  mode:mode ->
  unit ->
  t

(** Do two regions denote potentially-overlapping data? Roots must
    match; a wildcard path covers every path below its stem. *)
val regions_overlap : region -> region -> bool

(** Pairwise interference diagnostics (sorted); [[]] means the two
    footprints are disjoint and the sessions could safely overlap. *)
val interferes : t -> t -> Diagnostic.t list

val pp_mode : Format.formatter -> mode -> unit
val pp_region : Format.formatter -> region -> unit
val pp : Format.formatter -> t -> unit

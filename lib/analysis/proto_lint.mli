(** Session-protocol verifier: replays a {!Srpc_simnet.Trace} against
    the paper's coherency-protocol invariants (sections 3.1 and 3.4).

    - [SP001] exactly one active thread per session: outstanding
      requests must nest like a stack, every request is issued by the
      current holder of the thread of control, and every reply matches
      the innermost outstanding request
    - [SP002] every request is eventually replied (before session end,
      or at the latest by the end of the trace)
    - [SP003] no wire traffic or protocol mark outside an open session,
      no overlapping or mismatched session begin/end marks
    - [SP004] at session close, the ground space's write-back phase
      precedes the invalidation multicast
    - [SP005] an aborted session ends with an invalidation mark and
      carries no write-back mark — nothing of its modified data set was
      committed
    - [SP006] no frame is sent from or to an endpoint between its crash
      mark and its revive mark
    - [SP007] a session's close-time invalidation covers every space
      that received a data copy during the session
    - [SP008] two sessions concurrently open must never both write the
      same datum root — the admission controller must have queued or
      abort-retried one of them ([Session_queued]) until the other
      closed

    Fault-injected traces stay verifiable: [Dropped] request frames are
    thread-neutral, a [Dropped] reply hands the thread of control back
    to the requester (who retries), and [Dup] frames are the duplicate
    copies the receiver's reply cache absorbs.

    Traces carrying {!Srpc_simnet.Trace.kind.Session_admit} marks were
    produced under the concurrent admission controller: several sessions
    may be legitimately open at once, and the verifier multiplexes one
    protocol state machine per open session id (requests are attributed
    to the unique session whose thread of control rests at the sender).
    All other traces take the historical single-session machine
    unchanged. *)

open Srpc_simnet

(** [check trace] replays the whole trace and returns the violations,
    sorted errors-first. An empty list means the trace is a valid
    witness of the protocol. *)
val check : Trace.t -> Diagnostic.t list

(** [check_events events] is {!check} on an explicit event list. *)
val check_events : Trace.event list -> Diagnostic.t list

open Srpc_types
open Srpc_memory

exception Invalid_registry of Diagnostic.t list

let all_arches = [ Arch.ilp32_le; Arch.sparc32; Arch.lp64_le; Arch.lp64_be ]

(* --- TD001 / TD003 / TD004 / TD006: one structural walk per type --- *)

let structural_diags reg name desc =
  let out = ref [] in
  let emit severity rule_id path message =
    out := Diagnostic.make ~severity ~rule_id ~path message :: !out
  in
  let rec go path (ty : Type_desc.t) =
    match ty with
    | Prim _ -> ()
    | Pointer target ->
      if not (Registry.mem reg target) then
        emit Error "TD006" path
          (Printf.sprintf "pointee type %S is never registered" target)
    | Named target ->
      if not (Registry.mem reg target) then
        emit Error "TD001" path
          (Printf.sprintf "dangling reference to unregistered type %S" target)
    | Array (elem, n) ->
      if n < 0 then emit Error "TD003" path (Printf.sprintf "negative array length %d" n)
      else if n = 0 then emit Warning "TD003" path "zero-length array";
      go (path ^ "[]") elem
    | Struct fields ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (fname, _) ->
          if Hashtbl.mem seen fname then
            emit Error "TD004" (path ^ "." ^ fname)
              (Printf.sprintf "duplicate field name %S" fname)
          else Hashtbl.add seen fname ())
        fields;
      List.iter (fun (fname, fty) -> go (path ^ "." ^ fname) fty) fields
  in
  go name desc;
  List.rev !out

(* --- TD002: by-value cycles through Named references ---

   Pointers do not recurse (a list node pointing at itself is finite),
   so the walk descends through Named, Struct and Array only. Each cycle
   is reported once, at the first name that closes it. *)

let cycle_diags reg =
  let out = ref [] in
  let safe : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let rec go visiting (ty : Type_desc.t) =
    match ty with
    | Prim _ | Pointer _ -> ()
    | Array (elem, _) -> go visiting elem
    | Struct fields -> List.iter (fun (_, fty) -> go visiting fty) fields
    | Named n ->
      if Hashtbl.mem safe n then ()
      else if List.mem n visiting then begin
        if not (Hashtbl.mem reported n) then begin
          Hashtbl.add reported n ();
          let chain =
            let rec drop = function
              | [] -> []
              | x :: rest -> if String.equal x n then x :: rest else drop rest
            in
            drop (List.rev visiting) @ [ n ]
          in
          out :=
            Diagnostic.make ~severity:Error ~rule_id:"TD002" ~path:n
              (Printf.sprintf "by-value struct cycle: %s"
                 (String.concat " -> " chain))
            :: !out
        end
      end
      else (
        match Registry.find_opt reg n with
        | None -> () (* dangling: TD001's business *)
        | Some d ->
          go (n :: visiting) d;
          Hashtbl.replace safe n ())
  in
  List.iter
    (fun name ->
      match Registry.find_opt reg name with
      | Some d ->
        go [ name ] d;
        Hashtbl.replace safe name ()
      | None -> ())
    (Registry.names reg);
  List.rev !out

(* --- TD005: layout divergence across architectures ---

   Expected whenever a type transitively contains pointers (word size
   differs), which the leaf-wise object codec handles — hence a warning,
   not an error. It matters to any code path that copies raw bytes with
   a size computed on one architecture. Types that already failed a
   structural rule are skipped: their layout cannot be computed. *)

let divergence_diags reg arches name =
  let distinct_arches =
    List.sort_uniq (fun a b -> compare a.Arch.name b.Arch.name) arches
  in
  if List.length distinct_arches < 2 then []
  else
    let layouts =
      List.filter_map
        (fun arch ->
          match Layout.of_type reg arch (Type_desc.Named name) with
          | l -> Some (arch, l.Layout.size, l.Layout.align)
          | exception _ -> None)
        distinct_arches
    in
    match layouts with
    | [] | [ _ ] -> []
    | (_, size0, align0) :: rest ->
      if List.for_all (fun (_, s, a) -> s = size0 && a = align0) rest then []
      else
        let detail =
          String.concat ", "
            (List.map
               (fun (arch, s, a) ->
                 Printf.sprintf "%s=%d/%d" arch.Arch.name s a)
               layouts)
        in
        [
          Diagnostic.make ~severity:Warning ~rule_id:"TD005" ~path:name
            ("size/align differs across architectures: " ^ detail);
        ]

(* --- TD007: closure-shape hints must match the registry ---

   A hint's [follow] list is consulted on every closure traversal: a
   misspelled field raises mid-session, and a pointer-free field
   silently prefetches nothing. Hints arrive as plain
   (type, followed fields) pairs so this library stays below the
   runtime in the dependency order. *)

let hint_diags reg arches ((ty, fields) : string * string list) =
  let path = "hint:" ^ ty in
  let emit severity message =
    Diagnostic.make ~severity ~rule_id:"TD007" ~path message
  in
  match Registry.find_opt reg ty with
  | None -> [ emit Diagnostic.Error (Printf.sprintf "closure hint for unregistered type %S" ty) ]
  | Some _ -> (
    match Registry.resolve reg (Type_desc.Named ty) with
    | exception _ -> [] (* dangling alias chain: TD001's business *)
    | Type_desc.Struct struct_fields ->
      List.filter_map
        (fun field ->
          match List.assoc_opt field struct_fields with
          | None ->
            Some
              (emit Diagnostic.Error
                 (Printf.sprintf "hint follows field %S, which type %S does not declare"
                    field ty))
          | Some fty -> (
            let arch = match arches with a :: _ -> a | [] -> Arch.sparc32 in
            match Layout.pointer_leaves reg arch fty with
            | [] ->
              Some
                (emit Diagnostic.Warning
                   (Printf.sprintf
                      "hinted field %S of %S contains no pointers; following it prefetches nothing"
                      field ty))
            | _ :: _ -> None
            | exception _ -> None (* broken field type: structural rules report it *)))
        fields
    | Type_desc.Prim _ | Pointer _ | Array _ | Named _ ->
      [ emit Diagnostic.Error (Printf.sprintf "closure hint for non-struct type %S" ty) ])

let check ?(arches = [ Arch.sparc32 ]) ?(hints = []) reg =
  let names = Registry.names reg in
  let structural =
    List.concat_map
      (fun name -> structural_diags reg name (Registry.find reg name))
      names
  in
  let cycles = cycle_diags reg in
  let divergence = List.concat_map (divergence_diags reg arches) names in
  let hinted = List.concat_map (hint_diags reg arches) hints in
  Diagnostic.sort (structural @ cycles @ divergence @ hinted)

let validate ?arches ?hints reg =
  let errors = List.filter Diagnostic.is_error (check ?arches ?hints reg) in
  if errors <> [] then raise (Invalid_registry errors)

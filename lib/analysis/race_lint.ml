open Srpc_simnet

(* Vector clocks, one per space, keyed by space name. A clock maps
   space -> count of that space's local steps known to have
   happened-before this point. *)
module Sm = Map.Make (String)

type clock = int Sm.t

let clock_get c k = Option.value ~default:0 (Sm.find_opt k c)
let clock_tick c k = Sm.add k (clock_get c k + 1) c

let clock_join a b =
  Sm.union (fun _ x y -> Some (max x y)) a b

(* [a] happened-before (or equals) [b]? *)
let clock_leq a b = Sm.for_all (fun k v -> v <= clock_get b k) a

(* The home space of a datum named "HOME/ADDR". *)
let datum_home datum =
  match String.index_opt datum '/' with
  | Some i -> String.sub datum 0 i
  | None -> datum

type last_write = { writer : string; at_clock : clock; widx : int }

type pending = { pw_writer : string; pw_session : int; pw_idx : int }

type state = {
  vcs : (string, clock) Hashtbl.t;
  (* per-datum last write, for CC101 *)
  writes : (string, last_write) Hashtbl.t;
  (* per-space: datum -> session the current cached copy was installed
     in, for CC102(a); cleared wholesale by Acc_drop / crash / revive *)
  copies : (string, (string, int) Hashtbl.t) Hashtbl.t;
  (* per-datum unapplied foreign write, for CC102(b) *)
  pendings : (string, pending) Hashtbl.t;
  (* data freed and not yet reallocated, for CC103 *)
  freed : (string, int) Hashtbl.t;  (* datum -> free event index *)
  (* session lifecycle *)
  mutable session : int option;
  mutable aborted : bool;
  closed : (int, unit) Hashtbl.t;  (* sessions seen closing (end/abort) *)
  session_crashes : (string, unit) Hashtbl.t;
      (* spaces that crashed while the current session was open — their
         lost updates are abort semantics, not races *)
  (* one report per (rule, space, datum): a stale copy read in a loop
     is one defect, not fifty *)
  reported : (string, unit) Hashtbl.t;
  mutable out : Diagnostic.t list;
}

let vc st space =
  match Hashtbl.find_opt st.vcs space with
  | Some c -> c
  | None -> Sm.empty

let set_vc st space c = Hashtbl.replace st.vcs space c

let copies_of st space =
  match Hashtbl.find_opt st.copies space with
  | Some m -> m
  | None ->
    let m = Hashtbl.create 16 in
    Hashtbl.add st.copies space m;
    m

let emit st idx ~space ~rule ~key message =
  let k = rule ^ "|" ^ space ^ "|" ^ key in
  if not (Hashtbl.mem st.reported k) then begin
    Hashtbl.add st.reported k ();
    st.out <-
      Diagnostic.make ~space ~severity:Error ~rule_id:rule
        ~path:(Printf.sprintf "event[%d]" idx)
        message
      :: st.out
  end

(* --- happens-before edges --- *)

let frame_edge st ~src ~dst =
  (* a delivered frame: the sender's step, then the receiver learns
     everything the sender knew *)
  let c = clock_tick (vc st src) src in
  set_vc st src c;
  set_vc st dst (clock_join (vc st dst) c)

let drop_edge st ~src =
  (* the send happened; nobody learned about it *)
  set_vc st src (clock_tick (vc st src) src)

(* --- the access alphabet --- *)

let is_write = function
  | Trace.Acc_write | Trace.Acc_apply -> true
  | Trace.Acc_read | Trace.Acc_serve | Trace.Acc_install | Trace.Acc_free
  | Trace.Acc_alloc | Trace.Acc_drop ->
    false

let touches_payload = function
  | Trace.Acc_read | Trace.Acc_write | Trace.Acc_serve | Trace.Acc_install ->
    true
  | Trace.Acc_apply | Trace.Acc_free | Trace.Acc_alloc | Trace.Acc_drop ->
    false

let check_freed st idx ~space ~datum akind =
  match Hashtbl.find_opt st.freed datum with
  | Some fidx when touches_payload akind ->
    emit st idx ~space ~rule:"CC103" ~key:datum
      (Printf.sprintf "%s %s %s, freed at event[%d] and never reallocated"
         (Trace.access_name akind) space datum fidx)
  | Some _ | None -> ()

let check_write_order st idx ~space ~datum =
  (* CC101: the previous write to this datum (from another space) must
     happen-before this one along delivered frames *)
  (match Hashtbl.find_opt st.writes datum with
  | Some w
    when (not (String.equal w.writer space))
         && not (clock_leq w.at_clock (vc st space)) ->
    emit st idx ~space ~rule:"CC101" ~key:datum
      (Printf.sprintf
         "%s wrote %s concurrently with %s's write at event[%d]: no \
          happens-before path connects them"
         space datum w.writer w.widx)
  | Some _ | None -> ());
  (* the write is a local step of its own, so a later snapshot compare
     can tell "after the write" from "after the last frame" *)
  let c = clock_tick (vc st space) space in
  set_vc st space c;
  Hashtbl.replace st.writes datum { writer = space; at_clock = c; widx = idx }

let check_stale_copy st idx ~space ~datum ~session akind =
  (* CC102(a): the copy being touched was installed during a session
     that already closed — its invalidation never landed here *)
  match akind with
  | Trace.Acc_read | Trace.Acc_write -> (
    match Hashtbl.find_opt (copies_of st space) datum with
    | Some inst
      when inst <> session && Hashtbl.mem st.closed inst ->
      emit st idx ~space ~rule:"CC102" ~key:datum
        (Printf.sprintf
           "%s %s a copy of %s installed in closed session #%d during \
            session #%d: the invalidation never reached this space"
           space
           (if akind = Trace.Acc_write then "writes" else "reads")
           datum inst session)
    | Some _ | None -> ())
  | _ -> ()

let track_pending st idx ~space ~datum ~session akind =
  let home = datum_home datum in
  match akind with
  | Trace.Acc_write when not (String.equal home space) ->
    Hashtbl.replace st.pendings datum
      { pw_writer = space; pw_session = session; pw_idx = idx }
  | Trace.Acc_apply | Trace.Acc_free when String.equal home space ->
    Hashtbl.remove st.pendings datum
  | _ -> ()

let access st idx ~src ~session ~datum akind =
  if String.equal datum "*" then begin
    (* a cache purge: every copy this space held is gone *)
    match akind with
    | Trace.Acc_drop -> Hashtbl.remove st.copies src
    | _ -> ()
  end
  else begin
    check_freed st idx ~space:src ~datum akind;
    (match akind with
    | Trace.Acc_free -> Hashtbl.replace st.freed datum idx
    | Trace.Acc_alloc ->
      Hashtbl.remove st.freed datum;
      Hashtbl.remove st.writes datum;
      Hashtbl.remove st.pendings datum
    | Trace.Acc_install ->
      Hashtbl.replace (copies_of st src) datum session
    | Trace.Acc_drop ->
      (* session-scoped purge (concurrent admission): the invalidation
         names each dropped copy instead of wiping the whole cache *)
      Hashtbl.remove (copies_of st src) datum
    | _ -> ());
    check_stale_copy st idx ~space:src ~datum ~session akind;
    if is_write akind then check_write_order st idx ~space:src ~datum;
    track_pending st idx ~space:src ~datum ~session akind
  end

(* --- session lifecycle --- *)

let session_close st idx id ~committed =
  Hashtbl.replace st.closed id ();
  if committed then
    (* CC102(b): a committed close guarantees the modified data set
       reached every home; any write still pending was silently lost *)
    Hashtbl.iter
      (fun datum p ->
        if
          p.pw_session = id
          && not (Hashtbl.mem st.session_crashes (datum_home datum))
        then
          emit st idx ~space:p.pw_writer ~rule:"CC102" ~key:datum
            (Printf.sprintf
               "session #%d committed but %s's write to %s at event[%d] \
                never reached its home"
               id p.pw_writer datum p.pw_idx))
      st.pendings;
  (* either way the session's pendings are settled: committed ones were
     just judged, aborted ones are discarded by design *)
  let drop =
    Hashtbl.fold
      (fun datum p acc -> if p.pw_session = id then datum :: acc else acc)
      st.pendings []
  in
  List.iter (Hashtbl.remove st.pendings) drop;
  st.session <- None;
  st.aborted <- false

let step st idx (e : Trace.event) =
  match e.Trace.kind with
  | (Trace.Message _ | Trace.Dup _ | Trace.Dropped _)
    when String.equal e.Trace.label "hb" || String.equal e.Trace.label "hb-ack"
    ->
    (* failure-detector heartbeats synchronize nothing the program can
       observe — giving them happens-before edges could mask a genuine
       race between sessions, so they are invisible here *)
    ()
  | Trace.Message _ -> frame_edge st ~src:e.Trace.src ~dst:e.Trace.dst
  | Trace.Dup _ ->
    (* the duplicate still carries the sender's knowledge; the receiver's
       reply cache suppresses re-execution but the join is sound *)
    frame_edge st ~src:e.Trace.src ~dst:e.Trace.dst
  | Trace.Dropped _ -> drop_edge st ~src:e.Trace.src
  | Trace.Session_begin id ->
    st.session <- Some id;
    st.aborted <- false;
    Hashtbl.reset st.session_crashes
  | Trace.Session_abort id ->
    ignore id;
    st.aborted <- true
  | Trace.Session_end id -> session_close st idx id ~committed:(not st.aborted)
  | Trace.Crash ep ->
    (* the space's memory is gone with it *)
    Hashtbl.remove st.copies ep;
    Hashtbl.replace st.session_crashes ep ()
  | Trace.Revive ep ->
    (* it restarts empty-handed *)
    Hashtbl.remove st.copies ep
  | Trace.Access { session; datum; akind } ->
    access st idx ~src:e.Trace.src ~session ~datum akind
  | Trace.Write_back _ | Trace.Invalidate _ | Trace.Copy _
  | Trace.Inval_sent _ | Trace.Session_admit _ | Trace.Session_queued _
  | Trace.Session_shed _ ->
    ()

let check_events events =
  let st =
    {
      vcs = Hashtbl.create 8;
      writes = Hashtbl.create 64;
      copies = Hashtbl.create 8;
      pendings = Hashtbl.create 16;
      freed = Hashtbl.create 16;
      session = None;
      aborted = false;
      closed = Hashtbl.create 16;
      session_crashes = Hashtbl.create 4;
      reported = Hashtbl.create 16;
      out = [];
    }
  in
  List.iteri (fun idx e -> step st idx e) events;
  Diagnostic.sort (List.rev st.out)

let check trace = check_events (Trace.events trace)

(** Static linter for registered type descriptors.

    The runtime trusts descriptors to drive swizzling, layout
    translation and closure traversal; a bad descriptor corrupts data
    silently at run time instead of failing loudly. This pass checks a
    whole {!Srpc_types.Registry} offline:

    - [TD001] dangling [Named] target (alias to an unregistered type)
    - [TD002] by-value struct cycle — the type's size is infinite
      (self-reference behind a [Pointer] is fine)
    - [TD003] negative (error) or zero (warning) array length
    - [TD004] duplicate struct field names
    - [TD005] size/alignment divergence between architectures (warning:
      expected for pointer-bearing types, but fatal to raw byte copies)
    - [TD006] pointer field whose pointee type is never registered
      (swizzling such a pointer would raise [Unknown_type] mid-session)
    - [TD007] closure-shape hint naming an unregistered or non-struct
      type or a field the type does not declare (error: traversal would
      raise mid-session), or a followed field with no pointers in it
      (warning: the hint prefetches nothing) *)

open Srpc_types
open Srpc_memory

(** Raised by {!validate} with the error-severity findings. *)
exception Invalid_registry of Diagnostic.t list

(** The four built-in architectures, for a maximally pessimistic
    divergence check. *)
val all_arches : Arch.t list

(** [check ?arches ?hints reg] lints every registered type and returns
    the findings sorted errors-first. [arches] (default
    [[Arch.sparc32]]) is the set of architectures the registry must
    agree on; TD005 only fires when at least two distinct architectures
    are given. [hints] is the installed closure-shape hint table as
    plain (type, followed fields) pairs, checked by TD007. *)
val check :
  ?arches:Arch.t list ->
  ?hints:(string * string list) list ->
  Registry.t ->
  Diagnostic.t list

(** [validate ?arches ?hints reg] raises {!Invalid_registry} if [check]
    finds any error-severity diagnostic. Used by
    [Node.create ~validate:true]. *)
val validate :
  ?arches:Arch.t list -> ?hints:(string * string list) list -> Registry.t -> unit

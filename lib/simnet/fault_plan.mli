(** Deterministic, seeded fault injection for {!Transport}.

    A fault plan decides the fate of every frame the transport sends:
    delivered, dropped, or delivered twice — plus added latency,
    one-direction partitions, and endpoint crashes. Install one with
    {!Transport.set_fault_plan}; with no plan installed the transport is
    perfectly reliable and behaves exactly as before.

    All randomness comes from one seeded PRNG consumed in frame order,
    so a run with the same seed, workload and plan mutations replays the
    identical fault schedule. *)

type endpoint = string

(** Per-scope fault probabilities and delay. *)
type profile = {
  drop : float;  (** probability a frame is lost, per frame *)
  duplicate : float;  (** probability a delivered frame arrives twice *)
  latency : float;  (** extra seconds added to every frame *)
}

(** [profile ()] is all-zero; override the fields you want. *)
val profile : ?drop:float -> ?duplicate:float -> ?latency:float -> unit -> profile

type t

(** [create ()] builds a plan with no faults configured. [seed] (default
    0) drives the PRNG; [timeout] (default 2 ms simulated) is how long a
    sender waits on a lost frame before {!Transport.rpc} raises
    [Timeout]. *)
val create : ?seed:int -> ?timeout:float -> unit -> t

val timeout : t -> float

(** The seed [create] was given. *)
val seed : t -> int

(** [reset t] rewinds the PRNG to its initial state and clears any
    pending {!drop_next} debt, so the same plan object replays the
    identical fault schedule across repeated runs (profiles, partitions
    and crash marks are left as configured). *)
val reset : t -> unit

(** [set_global t p] applies [p] to every link without its own profile. *)
val set_global : t -> profile -> unit

(** [set_link t ~src ~dst p] overrides the profile for frames from [src]
    to [dst] (one direction only). *)
val set_link : t -> src:endpoint -> dst:endpoint -> profile -> unit

val clear_link : t -> src:endpoint -> dst:endpoint -> unit

(** One-direction partition: frames from [src] to [dst] are always lost
    until {!heal}. The reverse direction is unaffected. *)
val partition : t -> src:endpoint -> dst:endpoint -> unit

val heal : t -> src:endpoint -> dst:endpoint -> unit
val is_partitioned : t -> src:endpoint -> dst:endpoint -> bool

(** [crash t ep] marks [ep] dead: the transport refuses frames to it
    with [Peer_crashed] until {!revive}. Crashes are permanent unless
    revived. Prefer {!Transport.crash}, which also records the trace
    mark the SP006 verifier keys on. *)
val crash : t -> endpoint -> unit

val revive : t -> endpoint -> unit
val is_crashed : t -> endpoint -> bool

(** [drop_next t n] forces the next [n] frames (any link) to be lost,
    regardless of probabilities — deterministic loss for tests. *)
val drop_next : t -> int -> unit

(** The fate of one frame about to be sent. Consumes PRNG state. *)
type fate = Deliver | Drop | Duplicate

val frame_fate : t -> src:endpoint -> dst:endpoint -> fate

(** Extra latency configured for this direction (does not consume PRNG
    state). *)
val extra_latency : t -> src:endpoint -> dst:endpoint -> float

(** Reliable synchronous transport between simulated endpoints.

    RPC sessions have exactly one active thread (paper, section 3.1), so a
    request is delivered by invoking the destination dispatcher
    re-entrantly and handing its reply back; nested RPCs and callbacks are
    nested dispatches. Frames are opaque byte strings: callers encode with
    their own wire format, and the cost model charges for the real encoded
    sizes. *)

type t

(** Endpoints are named by strings (address-space identifiers render
    themselves). *)
type endpoint = string

exception Unknown_endpoint of endpoint

val create : clock:Clock.t -> stats:Stats.t -> cost:Cost_model.t -> t
val clock : t -> Clock.t
val stats : t -> Stats.t
val cost : t -> Cost_model.t

(** [set_link_cost t ~src ~dst cost] overrides the cost model for frames
    from [src] to [dst] (one direction only) — e.g. to put one pair of
    sites behind a WAN link. *)
val set_link_cost : t -> src:endpoint -> dst:endpoint -> Cost_model.t -> unit

val clear_link_cost : t -> src:endpoint -> dst:endpoint -> unit

(** [link_cost t ~src ~dst] is the effective model for that direction. *)
val link_cost : t -> src:endpoint -> dst:endpoint -> Cost_model.t

(** [set_trace t trace] attaches an event recorder; every frame is
    recorded with its simulated send time. [None] detaches. *)
val set_trace : t -> Trace.t option -> unit

(** [mark t ~src kind] records a protocol mark (session begin/end,
    write-back or invalidation phase) at the current simulated time, if a
    trace is attached. *)
val mark : t -> src:endpoint -> Trace.kind -> unit

(** [register t ep dispatch] installs [dispatch] as [ep]'s request
    handler. A second registration for the same endpoint replaces the
    first. *)
val register : t -> endpoint -> (endpoint -> string -> string) -> unit

val unregister : t -> endpoint -> unit
val is_registered : t -> endpoint -> bool
val endpoints : t -> endpoint list

(** [rpc t ~src ~dst request] delivers [request] to [dst]'s dispatcher and
    returns its reply, advancing the clock by the frame costs of both
    directions. The dispatcher receives [src] so it can call back.
    @raise Unknown_endpoint if [dst] has no dispatcher. *)
val rpc : t -> src:endpoint -> dst:endpoint -> string -> string

(** [multicast t ~src ~dsts request] sends [request] to every destination
    in turn, discarding replies (used for the end-of-session invalidation
    multicast). Destinations equal to [src] are skipped. *)
val multicast : t -> src:endpoint -> dsts:endpoint list -> string -> unit

(** [charge_fault t] advances the clock by the cost of servicing one page
    fault and counts it. *)
val charge_fault : t -> unit

(** [charge_local_touches t n] advances the clock by the CPU cost of [n]
    in-memory application-level accesses. *)
val charge_local_touches : t -> int -> unit

(** [charge_cpu_bytes t n] advances the clock by the per-byte CPU cost
    for [n] bytes of runtime-side byte crunching that is not wire
    traffic (e.g. twin snapshots and diffs). *)
val charge_cpu_bytes : t -> int -> unit

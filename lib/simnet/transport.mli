(** Reliable synchronous transport between simulated endpoints.

    RPC sessions have exactly one active thread (paper, section 3.1), so a
    request is delivered by invoking the destination dispatcher
    re-entrantly and handing its reply back; nested RPCs and callbacks are
    nested dispatches. Frames are opaque byte strings: callers encode with
    their own wire format, and the cost model charges for the real encoded
    sizes. *)

type t

(** Endpoints are named by strings (address-space identifiers render
    themselves). *)
type endpoint = string

exception Unknown_endpoint of endpoint

(** A frame (or its reply) was lost by the installed {!Fault_plan} and
    the sender gave up waiting. Only raised when a fault plan is
    installed. *)
exception Timeout of endpoint

(** The named endpoint is crashed in the installed {!Fault_plan}; no
    frame was sent. Only raised when a fault plan is installed. *)
exception Peer_crashed of endpoint

val create : clock:Clock.t -> stats:Stats.t -> cost:Cost_model.t -> t
val clock : t -> Clock.t
val stats : t -> Stats.t
val cost : t -> Cost_model.t

(** [set_link_cost t ~src ~dst cost] overrides the cost model for frames
    from [src] to [dst] (one direction only) — e.g. to put one pair of
    sites behind a WAN link. *)
val set_link_cost : t -> src:endpoint -> dst:endpoint -> Cost_model.t -> unit

val clear_link_cost : t -> src:endpoint -> dst:endpoint -> unit

(** [link_cost t ~src ~dst] is the effective model for that direction. *)
val link_cost : t -> src:endpoint -> dst:endpoint -> Cost_model.t

(** [set_trace t trace] attaches an event recorder; every frame is
    recorded with its simulated send time. [None] detaches. *)
val set_trace : t -> Trace.t option -> unit

(** [traced t] is true when an event recorder is attached — the runtime
    uses it to skip building witness-only marks nobody will read. *)
val traced : t -> bool

(** [set_frame_labeler t (Some f)] installs a frame labeler: when a
    trace is attached, every recorded frame event carries
    [f ~dir frame] as its [label] (the decoded opcode). Exceptions from
    [f] degrade to the empty label. The labeler is never consulted
    without a trace. *)
val set_frame_labeler :
  t -> (dir:Trace.direction -> string -> string) option -> unit

(** [set_fault_plan t (Some plan)] turns fault injection on: every
    frame's fate is decided by [plan], and {!rpc} may raise {!Timeout}
    or {!Peer_crashed}. [None] (the default) restores the perfectly
    reliable transport with behavior identical to a build without the
    fault layer. *)
val set_fault_plan : t -> Fault_plan.t option -> unit

val fault_plan : t -> Fault_plan.t option

(** [mark t ~src kind] records a protocol mark (session begin/end,
    write-back or invalidation phase) at the current simulated time, if a
    trace is attached. *)
val mark : t -> src:endpoint -> Trace.kind -> unit

(** [note t ~src ~dst kind] records a zero-byte protocol note naming a
    destination ([Trace.Copy] / [Trace.Inval_sent] provenance for the
    delta-coherency verifier), if a trace is attached. No stats are
    counted and no simulated time passes: notes are witnesses of
    bookkeeping, not traffic. *)
val note : t -> src:endpoint -> dst:endpoint -> Trace.kind -> unit

(** [crash t ep] marks [ep] dead in the installed fault plan and records
    the [Crash] trace mark (once). Raises [Invalid_argument] when no
    fault plan is installed. *)
val crash : t -> endpoint -> unit

(** [revive t ep] brings a crashed endpoint back and records the
    [Revive] trace mark. Raises [Invalid_argument] when no fault plan is
    installed. *)
val revive : t -> endpoint -> unit

(** [register t ep dispatch] installs [dispatch] as [ep]'s request
    handler. A second registration for the same endpoint replaces the
    first. *)
val register : t -> endpoint -> (endpoint -> string -> string) -> unit

val unregister : t -> endpoint -> unit
val is_registered : t -> endpoint -> bool
val endpoints : t -> endpoint list

(** [rpc t ~src ~dst request] delivers [request] to [dst]'s dispatcher and
    returns its reply, advancing the clock by the frame costs of both
    directions. The dispatcher receives [src] so it can call back.
    @raise Unknown_endpoint if [dst] has no dispatcher.
    @raise Timeout if the installed fault plan lost the request or reply.
    @raise Peer_crashed if the fault plan marks [dst] (or [src]) dead. *)
val rpc : t -> src:endpoint -> dst:endpoint -> string -> string

(** [multicast t ~src ~dsts request] sends [request] to every destination
    in turn, discarding replies (used for the end-of-session invalidation
    multicast). Destinations equal to [src] are skipped. Unreachable
    destinations ([Unknown_endpoint], [Timeout], [Peer_crashed]) do not
    stop the multicast; they are returned with the exception that
    excluded them, in destination order. *)
val multicast :
  t -> src:endpoint -> dsts:endpoint list -> string -> (endpoint * exn) list

(** [charge_fault t] advances the clock by the cost of servicing one page
    fault and counts it. *)
val charge_fault : t -> unit

(** [charge_local_touches t n] advances the clock by the CPU cost of [n]
    in-memory application-level accesses. *)
val charge_local_touches : t -> int -> unit

(** [charge_cpu_bytes t n] advances the clock by the per-byte CPU cost
    for [n] bytes of runtime-side byte crunching that is not wire
    traffic (e.g. twin snapshots and diffs). *)
val charge_cpu_bytes : t -> int -> unit

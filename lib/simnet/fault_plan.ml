type endpoint = string

type profile = { drop : float; duplicate : float; latency : float }

let zero_profile = { drop = 0.0; duplicate = 0.0; latency = 0.0 }

let profile ?(drop = 0.0) ?(duplicate = 0.0) ?(latency = 0.0) () =
  if drop < 0.0 || drop > 1.0 || duplicate < 0.0 || duplicate > 1.0 then
    invalid_arg "Fault_plan.profile: probabilities must be in [0, 1]";
  if latency < 0.0 then invalid_arg "Fault_plan.profile: negative latency";
  { drop; duplicate; latency }

type t = {
  seed : int;
  mutable rng : Random.State.t;
  timeout : float;
  mutable global : profile;
  links : (endpoint * endpoint, profile) Hashtbl.t;
  partitions : (endpoint * endpoint, unit) Hashtbl.t;
  crashed : (endpoint, unit) Hashtbl.t;
  mutable forced_drops : int;
}

let create ?(seed = 0) ?(timeout = 2.0e-3) () =
  if timeout < 0.0 then invalid_arg "Fault_plan.create: negative timeout";
  {
    seed;
    rng = Random.State.make [| seed |];
    timeout;
    global = zero_profile;
    links = Hashtbl.create 4;
    partitions = Hashtbl.create 4;
    crashed = Hashtbl.create 4;
    forced_drops = 0;
  }

let timeout t = t.timeout
let seed t = t.seed

let reset t =
  t.rng <- Random.State.make [| t.seed |];
  t.forced_drops <- 0
let set_global t p = t.global <- p
let set_link t ~src ~dst p = Hashtbl.replace t.links (src, dst) p
let clear_link t ~src ~dst = Hashtbl.remove t.links (src, dst)

let link_profile t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some p -> p
  | None -> t.global

let partition t ~src ~dst = Hashtbl.replace t.partitions (src, dst) ()
let heal t ~src ~dst = Hashtbl.remove t.partitions (src, dst)
let is_partitioned t ~src ~dst = Hashtbl.mem t.partitions (src, dst)
let crash t ep = Hashtbl.replace t.crashed ep ()
let revive t ep = Hashtbl.remove t.crashed ep
let is_crashed t ep = Hashtbl.mem t.crashed ep
let drop_next t n = t.forced_drops <- t.forced_drops + n

type fate = Deliver | Drop | Duplicate

let frame_fate t ~src ~dst =
  if t.forced_drops > 0 then begin
    t.forced_drops <- t.forced_drops - 1;
    Drop
  end
  else if is_partitioned t ~src ~dst then Drop
  else begin
    let p = link_profile t ~src ~dst in
    (* consume the PRNG identically whatever the profile, so adding a
       fault-free link does not shift the schedule of the others *)
    let r_drop = Random.State.float t.rng 1.0 in
    let r_dup = Random.State.float t.rng 1.0 in
    if r_drop < p.drop then Drop
    else if r_dup < p.duplicate then Duplicate
    else Deliver
  end

let extra_latency t ~src ~dst = (link_profile t ~src ~dst).latency

type direction = Request | Reply

type kind =
  | Message of direction
  | Dropped of direction
  | Dup of direction
  | Session_begin of int
  | Session_end of int
  | Write_back of int
  | Invalidate of int
  | Session_abort of int
  | Crash of string
  | Revive of string
  | Copy of int
  | Inval_sent of int

type event = {
  at : float;
  src : string;
  dst : string;
  kind : kind;
  bytes : int;
}

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let add t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let record t ~at ~src ~dst ~dir ~bytes =
  add t { at; src; dst; kind = Message dir; bytes }

let record_kind t ~at ~src ~dst ~kind ~bytes = add t { at; src; dst; kind; bytes }

let mark t ~at ~src kind = add t { at; src; dst = src; kind; bytes = 0 }

let events t = List.rev t.rev_events
let length t = t.count

let clear t =
  t.rev_events <- [];
  t.count <- 0

let between t ~src ~dst =
  List.length
    (List.filter
       (fun e ->
         e.kind = Message Request && String.equal e.src src && String.equal e.dst dst)
       t.rev_events)

let pp_kind ppf = function
  | Message Request -> Format.pp_print_string ppf "request"
  | Message Reply -> Format.pp_print_string ppf "reply"
  | Dropped Request -> Format.pp_print_string ppf "request (dropped)"
  | Dropped Reply -> Format.pp_print_string ppf "reply (dropped)"
  | Dup Request -> Format.pp_print_string ppf "request (duplicate)"
  | Dup Reply -> Format.pp_print_string ppf "reply (duplicate)"
  | Session_begin id -> Format.fprintf ppf "session-begin #%d" id
  | Session_end id -> Format.fprintf ppf "session-end #%d" id
  | Write_back id -> Format.fprintf ppf "write-back #%d" id
  | Invalidate id -> Format.fprintf ppf "invalidate #%d" id
  | Session_abort id -> Format.fprintf ppf "session-abort #%d" id
  | Crash ep -> Format.fprintf ppf "crash %s" ep
  | Revive ep -> Format.fprintf ppf "revive %s" ep
  | Copy id -> Format.fprintf ppf "copy #%d" id
  | Inval_sent id -> Format.fprintf ppf "inval-sent #%d" id

let pp_event ppf e =
  match e.kind with
  | Message _ | Dropped _ | Dup _ ->
    Format.fprintf ppf "%10.6f %s -> %s %a (%d bytes)" e.at e.src e.dst pp_kind
      e.kind e.bytes
  | Copy _ | Inval_sent _ ->
    Format.fprintf ppf "%10.6f %s -> %s %a" e.at e.src e.dst pp_kind e.kind
  | Session_begin _ | Session_end _ | Write_back _ | Invalidate _
  | Session_abort _ | Crash _ | Revive _ ->
    Format.fprintf ppf "%10.6f %s %a" e.at e.src pp_kind e.kind

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event ppf (events t)

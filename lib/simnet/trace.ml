type direction = Request | Reply

type access =
  | Acc_read
  | Acc_write
  | Acc_serve
  | Acc_apply
  | Acc_install
  | Acc_free
  | Acc_alloc
  | Acc_drop

type kind =
  | Message of direction
  | Dropped of direction
  | Dup of direction
  | Session_begin of int
  | Session_end of int
  | Session_admit of int
  | Session_queued of int
  | Session_shed of int
  | Write_back of int
  | Invalidate of int
  | Session_abort of int
  | Crash of string
  | Revive of string
  | Copy of int
  | Inval_sent of int
  | Access of { session : int; datum : string; akind : access }

type event = {
  at : float;
  src : string;
  dst : string;
  kind : kind;
  bytes : int;
  label : string;
}

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let add t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let record ?(label = "") t ~at ~src ~dst ~dir ~bytes =
  add t { at; src; dst; kind = Message dir; bytes; label }

let record_kind ?(label = "") t ~at ~src ~dst ~kind ~bytes =
  add t { at; src; dst; kind; bytes; label }

let mark t ~at ~src kind = add t { at; src; dst = src; kind; bytes = 0; label = "" }

let events t = List.rev t.rev_events
let length t = t.count

let clear t =
  t.rev_events <- [];
  t.count <- 0

let between t ~src ~dst =
  List.length
    (List.filter
       (fun e ->
         e.kind = Message Request && String.equal e.src src && String.equal e.dst dst)
       t.rev_events)

let access_name = function
  | Acc_read -> "read"
  | Acc_write -> "write"
  | Acc_serve -> "serve"
  | Acc_apply -> "apply"
  | Acc_install -> "install"
  | Acc_free -> "free"
  | Acc_alloc -> "alloc"
  | Acc_drop -> "drop"

let pp_kind ppf = function
  | Message Request -> Format.pp_print_string ppf "request"
  | Message Reply -> Format.pp_print_string ppf "reply"
  | Dropped Request -> Format.pp_print_string ppf "request (dropped)"
  | Dropped Reply -> Format.pp_print_string ppf "reply (dropped)"
  | Dup Request -> Format.pp_print_string ppf "request (duplicate)"
  | Dup Reply -> Format.pp_print_string ppf "reply (duplicate)"
  | Session_begin id -> Format.fprintf ppf "session-begin #%d" id
  | Session_end id -> Format.fprintf ppf "session-end #%d" id
  | Session_admit id -> Format.fprintf ppf "session-admit #%d" id
  | Session_queued id -> Format.fprintf ppf "session-queued #%d" id
  | Session_shed id -> Format.fprintf ppf "session-shed #%d" id
  | Write_back id -> Format.fprintf ppf "write-back #%d" id
  | Invalidate id -> Format.fprintf ppf "invalidate #%d" id
  | Session_abort id -> Format.fprintf ppf "session-abort #%d" id
  | Crash ep -> Format.fprintf ppf "crash %s" ep
  | Revive ep -> Format.fprintf ppf "revive %s" ep
  | Copy id -> Format.fprintf ppf "copy #%d" id
  | Inval_sent id -> Format.fprintf ppf "inval-sent #%d" id
  | Access { session; datum; akind } ->
    Format.fprintf ppf "access #%d %s %s" session (access_name akind) datum

let pp_event ppf e =
  match e.kind with
  | Message _ | Dropped _ | Dup _ ->
    if String.equal e.label "" then
      Format.fprintf ppf "%10.6f %s -> %s %a (%d bytes)" e.at e.src e.dst
        pp_kind e.kind e.bytes
    else
      Format.fprintf ppf "%10.6f %s -> %s %a[%s] (%d bytes)" e.at e.src e.dst
        pp_kind e.kind e.label e.bytes
  | Copy _ | Inval_sent _ ->
    Format.fprintf ppf "%10.6f %s -> %s %a" e.at e.src e.dst pp_kind e.kind
  | Session_begin _ | Session_end _ | Session_admit _ | Session_queued _
  | Session_shed _ | Write_back _ | Invalidate _ | Session_abort _ | Crash _
  | Revive _ | Access _ ->
    Format.fprintf ppf "%10.6f %s %a" e.at e.src pp_kind e.kind

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event ppf (events t)

(** Event counters for a simulated world.

    Counters accumulate across a run; experiment harnesses snapshot and
    subtract to attribute traffic to a measured region. *)

type t

type snapshot = {
  messages : int;  (** transport frames sent (requests and replies) *)
  bytes : int;  (** payload bytes over the wire *)
  faults : int;  (** page faults serviced by the runtime *)
  callbacks : int;  (** fetch round-trips issued by the lazy path *)
  writebacks : int;  (** dirty data items shipped by the coherency protocol *)
  remote_allocs : int;  (** batched remote allocation requests *)
  remote_frees : int;  (** batched remote release requests *)
  prefetched_bytes : int;
      (** in-memory bytes of data installed speculatively by the closure
          engine (eager items the receiver never asked for) *)
  wasted_prefetch_bytes : int;
      (** the subset of [prefetched_bytes] never touched by the program
          before its cache entry was invalidated *)
  stall_ns : int;
      (** simulated nanoseconds the program spent blocked on lazy fetch
          round trips (fault-time callbacks) *)
  retries : int;
      (** request re-sends by the retry envelope after a timeout *)
  timeouts : int;  (** frames the fault plan lost (sender waited in vain) *)
  duplicates : int;
      (** duplicate requests suppressed by the receiver's reply cache *)
  writeback_bytes : int;
      (** wire bytes of modified-data-set payload (full items and
          deltas), the delta-coherency win's denominator *)
  delta_bytes_saved : int;
      (** wire bytes the delta encoding avoided versus shipping the
          full item for the same entries *)
  full_fallbacks : int;
      (** delta-eligible entries shipped full anyway: stale or missing
          shadow, or the delta would not have been smaller *)
  invalidations_skipped : int;
      (** session participants spared an invalidation message because
          the copy directory showed they cached nothing *)
  sessions_admitted : int;
      (** sessions the admission controller let begin (immediately or
          after queueing) *)
  sessions_queued : int;
      (** admission requests deferred because their footprint conflicted
          with a session already open *)
  sessions_aborted : int;
      (** admission requests denied outright under the abort-and-retry
          policy (the caller backs off and retries) *)
  sessions_retried : int;
      (** previously deferred sessions that were eventually admitted *)
  validations_failed : int;
      (** sessions whose optimistic validation at close detected a
          conflicting foreign write (the loser retries) *)
  heartbeats_sent : int;
      (** liveness probes the failure detector put on the wire *)
  suspicions : int;
      (** peers the failure detector marked suspected after consecutive
          missed heartbeats *)
  sheds : int;
      (** admission requests shed with a typed [Overloaded] rejection
          (conflict queue full or retry budget exhausted) *)
  breaker_trips : int;
      (** admission requests refused because the session would touch a
          suspected- or confirmed-dead peer *)
  recoveries : int;
      (** crash-aborted sessions transparently replayed to completion
          after the dead peer revived *)
  offload_calls : int;
      (** traversal plans shipped to a datum's home ([Offload_call]
          frames issued) *)
  offload_nodes : int;
      (** nodes visited by home-side plan walks (work that stayed off
          the wire) *)
  offload_wset : int;
      (** home-heap data mutated by offloaded update plans (the write
          sets [Offload_return] reported) *)
}

val create : unit -> t
val incr_messages : t -> unit
val add_bytes : t -> int -> unit
val incr_faults : t -> unit
val incr_callbacks : t -> unit
val add_writebacks : t -> int -> unit
val add_remote_allocs : t -> int -> unit
val add_remote_frees : t -> int -> unit
val add_prefetched_bytes : t -> int -> unit
val add_wasted_prefetch_bytes : t -> int -> unit
val add_stall_ns : t -> int -> unit
val incr_retries : t -> unit
val incr_timeouts : t -> unit
val incr_duplicates : t -> unit
val add_writeback_bytes : t -> int -> unit
val add_delta_bytes_saved : t -> int -> unit
val incr_full_fallbacks : t -> unit
val add_invalidations_skipped : t -> int -> unit
val incr_sessions_admitted : t -> unit
val incr_sessions_queued : t -> unit
val incr_sessions_aborted : t -> unit
val incr_sessions_retried : t -> unit
val incr_validations_failed : t -> unit
val incr_heartbeats_sent : t -> unit
val incr_suspicions : t -> unit
val incr_sheds : t -> unit
val incr_breaker_trips : t -> unit
val incr_recoveries : t -> unit
val incr_offload_calls : t -> unit
val add_offload_nodes : t -> int -> unit
val add_offload_wset : t -> int -> unit
val snapshot : t -> snapshot
val reset : t -> unit

(** [diff later earlier] is the per-field difference, for attributing
    counts to a region of a run. *)
val diff : snapshot -> snapshot -> snapshot

val zero : snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit

(** Wire- and protocol-event recorder.

    Attach a trace to a {!Transport} to capture every frame with its
    simulated send time — the raw material for debugging protocols,
    asserting message sequences in tests, and rendering timelines.

    Beyond raw frames the runtime also records protocol {e marks} —
    session begin/end and the session-close write-back / invalidation
    phases — so a trace is a complete witness of the session coherency
    protocol that [Srpc_analysis.Proto_lint] can verify offline. *)

type direction = Request | Reply

type kind =
  | Message of direction  (** a wire frame *)
  | Dropped of direction  (** a frame lost by the fault plan *)
  | Dup of direction  (** the duplicate copy of a frame delivered twice *)
  | Session_begin of int  (** a ground thread opened session [id] *)
  | Session_end of int  (** session [id] closed *)
  | Write_back of int
      (** the ground space started the session-close write-back phase *)
  | Invalidate of int
      (** the ground space started the invalidation multicast *)
  | Session_abort of int
      (** the ground space aborted session [id]: modified data discarded *)
  | Crash of string  (** endpoint [ep] died; no frames from/to it after *)
  | Revive of string  (** endpoint [ep] came back *)
  | Copy of int
      (** delta-coherency note: [src] shipped cached copies of its data
          to [dst] during session [id] — the provenance the targeted
          invalidation must cover (rule SP007) *)
  | Inval_sent of int
      (** delta-coherency note: [src] sent (or attempted) a targeted
          invalidation to [dst] at the close of session [id] *)

type event = {
  at : float;  (** simulated time, seconds *)
  src : string;
  dst : string;  (** for marks, [dst = src] *)
  kind : kind;
  bytes : int;  (** 0 for marks *)
}

type t

val create : unit -> t

(** [record t ~at ~src ~dst ~dir ~bytes] records a wire frame. *)
val record :
  t -> at:float -> src:string -> dst:string -> dir:direction -> bytes:int -> unit

(** [record_kind t ~at ~src ~dst ~kind ~bytes] records an arbitrary
    event — used by the fault layer for dropped and duplicate frames. *)
val record_kind :
  t -> at:float -> src:string -> dst:string -> kind:kind -> bytes:int -> unit

(** [mark t ~at ~src kind] records a zero-byte protocol mark. *)
val mark : t -> at:float -> src:string -> kind -> unit

(** Events in chronological (= recording) order. *)
val events : t -> event list

val length : t -> int
val clear : t -> unit

(** [between t ~src ~dst] counts request frames from [src] to [dst]. *)
val between : t -> src:string -> dst:string -> int

val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

(** Render the whole trace, one event per line. *)
val pp : Format.formatter -> t -> unit

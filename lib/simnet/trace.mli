(** Wire- and protocol-event recorder.

    Attach a trace to a {!Transport} to capture every frame with its
    simulated send time — the raw material for debugging protocols,
    asserting message sequences in tests, and rendering timelines.

    Beyond raw frames the runtime also records protocol {e marks} —
    session begin/end, the session-close write-back / invalidation
    phases, and datum-granular {!kind.Access} marks — so a trace is a
    complete witness of the session coherency protocol that
    [Srpc_analysis.Proto_lint] and [Srpc_analysis.Race_lint] can verify
    offline. *)

type direction = Request | Reply

(** What a space did to a datum — the dynamic access alphabet consumed
    by the happens-before checker (rules CC101–CC103). *)
type access =
  | Acc_read  (** a cached (or home) read through an accessor *)
  | Acc_write  (** a cached (or home) write through an accessor *)
  | Acc_serve  (** the home shipped the datum to a peer (fetch/closure) *)
  | Acc_apply  (** the home applied a write-back (full or delta) *)
  | Acc_install  (** a peer installed a shipped copy in its cache *)
  | Acc_free  (** the home released the datum's region *)
  | Acc_alloc  (** the home carved a fresh datum out of its heap *)
  | Acc_drop
      (** the space discarded all session state (cache purge);
          [datum] is ["*"] *)

type kind =
  | Message of direction  (** a wire frame *)
  | Dropped of direction  (** a frame lost by the fault plan *)
  | Dup of direction  (** the duplicate copy of a frame delivered twice *)
  | Session_begin of int  (** a ground thread opened session [id] *)
  | Session_end of int  (** session [id] closed *)
  | Session_admit of int
      (** the admission controller licensed session [id] to open
          concurrently with the sessions already running — emitted just
          before its [Session_begin] when concurrent admission is on
          (rules SP003/SP008) *)
  | Session_queued of int
      (** the admission controller deferred session [id] because its
          footprint conflicted with an open session: FIFO-queued or
          denied for backoff-retry depending on policy (rule SP008) *)
  | Session_shed of int
      (** the admission controller refused session [id] with a typed
          rejection — conflict queue full, retry budget exhausted, or
          the circuit breaker held because a footprint peer is
          suspected dead. Terminal for the attempt: a later
          [Session_begin] for [id] requires a fresh [Session_admit]
          (rule SP009) *)
  | Write_back of int
      (** the ground space started the session-close write-back phase *)
  | Invalidate of int
      (** the ground space started the invalidation multicast *)
  | Session_abort of int
      (** the ground space aborted session [id]: modified data discarded *)
  | Crash of string  (** endpoint [ep] died; no frames from/to it after *)
  | Revive of string  (** endpoint [ep] came back *)
  | Copy of int
      (** provenance note: [src] shipped cached copies of its data to
          [dst] during session [id] — what the close-time invalidation
          must cover (rule SP007) *)
  | Inval_sent of int
      (** provenance note: [src] sent (or attempted) an invalidation to
          [dst] at the close of session [id] *)
  | Access of { session : int; datum : string; akind : access }
      (** [src] performed [akind] on [datum] (rendered ["HOME/ADDR"])
          during session [session] — the race checker's raw material *)

type event = {
  at : float;  (** simulated time, seconds *)
  src : string;
  dst : string;  (** for marks, [dst = src] *)
  kind : kind;
  bytes : int;  (** 0 for marks *)
  label : string;
      (** frame opcode (e.g. ["call-d"], ["wb-delta"]) when the
          transport has a frame labeler installed; [""] otherwise *)
}

type t

val create : unit -> t

(** [record t ~at ~src ~dst ~dir ~bytes] records a wire frame. *)
val record :
  ?label:string ->
  t ->
  at:float ->
  src:string ->
  dst:string ->
  dir:direction ->
  bytes:int ->
  unit

(** [record_kind t ~at ~src ~dst ~kind ~bytes] records an arbitrary
    event — used by the fault layer for dropped and duplicate frames. *)
val record_kind :
  ?label:string ->
  t ->
  at:float ->
  src:string ->
  dst:string ->
  kind:kind ->
  bytes:int ->
  unit

(** [mark t ~at ~src kind] records a zero-byte protocol mark. *)
val mark : t -> at:float -> src:string -> kind -> unit

(** Events in chronological (= recording) order. *)
val events : t -> event list

val length : t -> int
val clear : t -> unit

(** [between t ~src ~dst] counts request frames from [src] to [dst]. *)
val between : t -> src:string -> dst:string -> int

val access_name : access -> string
val pp_kind : Format.formatter -> kind -> unit
val pp_event : Format.formatter -> event -> unit

(** Render the whole trace, one event per line. *)
val pp : Format.formatter -> t -> unit

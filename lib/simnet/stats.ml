type snapshot = {
  messages : int;
  bytes : int;
  faults : int;
  callbacks : int;
  writebacks : int;
  remote_allocs : int;
  remote_frees : int;
  prefetched_bytes : int;
  wasted_prefetch_bytes : int;
  stall_ns : int;
  retries : int;
  timeouts : int;
  duplicates : int;
  writeback_bytes : int;
  delta_bytes_saved : int;
  full_fallbacks : int;
  invalidations_skipped : int;
  sessions_admitted : int;
  sessions_queued : int;
  sessions_aborted : int;
  sessions_retried : int;
  validations_failed : int;
  heartbeats_sent : int;
  suspicions : int;
  sheds : int;
  breaker_trips : int;
  recoveries : int;
  offload_calls : int;
  offload_nodes : int;
  offload_wset : int;
}

type t = {
  mutable messages : int;
  mutable bytes : int;
  mutable faults : int;
  mutable callbacks : int;
  mutable writebacks : int;
  mutable remote_allocs : int;
  mutable remote_frees : int;
  mutable prefetched_bytes : int;
  mutable wasted_prefetch_bytes : int;
  mutable stall_ns : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable duplicates : int;
  mutable writeback_bytes : int;
  mutable delta_bytes_saved : int;
  mutable full_fallbacks : int;
  mutable invalidations_skipped : int;
  mutable sessions_admitted : int;
  mutable sessions_queued : int;
  mutable sessions_aborted : int;
  mutable sessions_retried : int;
  mutable validations_failed : int;
  mutable heartbeats_sent : int;
  mutable suspicions : int;
  mutable sheds : int;
  mutable breaker_trips : int;
  mutable recoveries : int;
  mutable offload_calls : int;
  mutable offload_nodes : int;
  mutable offload_wset : int;
}

let create () =
  {
    messages = 0;
    bytes = 0;
    faults = 0;
    callbacks = 0;
    writebacks = 0;
    remote_allocs = 0;
    remote_frees = 0;
    prefetched_bytes = 0;
    wasted_prefetch_bytes = 0;
    stall_ns = 0;
    retries = 0;
    timeouts = 0;
    duplicates = 0;
    writeback_bytes = 0;
    delta_bytes_saved = 0;
    full_fallbacks = 0;
    invalidations_skipped = 0;
    sessions_admitted = 0;
    sessions_queued = 0;
    sessions_aborted = 0;
    sessions_retried = 0;
    validations_failed = 0;
    heartbeats_sent = 0;
    suspicions = 0;
    sheds = 0;
    breaker_trips = 0;
    recoveries = 0;
    offload_calls = 0;
    offload_nodes = 0;
    offload_wset = 0;
  }

let incr_messages t = t.messages <- t.messages + 1
let add_bytes t n = t.bytes <- t.bytes + n
let incr_faults t = t.faults <- t.faults + 1
let incr_callbacks t = t.callbacks <- t.callbacks + 1
let add_writebacks t n = t.writebacks <- t.writebacks + n
let add_remote_allocs t n = t.remote_allocs <- t.remote_allocs + n
let add_remote_frees t n = t.remote_frees <- t.remote_frees + n
let add_prefetched_bytes t n = t.prefetched_bytes <- t.prefetched_bytes + n

let add_wasted_prefetch_bytes t n =
  t.wasted_prefetch_bytes <- t.wasted_prefetch_bytes + n

let add_stall_ns t n = t.stall_ns <- t.stall_ns + n
let incr_retries t = t.retries <- t.retries + 1
let incr_timeouts t = t.timeouts <- t.timeouts + 1
let incr_duplicates t = t.duplicates <- t.duplicates + 1
let add_writeback_bytes t n = t.writeback_bytes <- t.writeback_bytes + n
let add_delta_bytes_saved t n = t.delta_bytes_saved <- t.delta_bytes_saved + n
let incr_full_fallbacks t = t.full_fallbacks <- t.full_fallbacks + 1

let add_invalidations_skipped t n =
  t.invalidations_skipped <- t.invalidations_skipped + n

let incr_sessions_admitted t = t.sessions_admitted <- t.sessions_admitted + 1
let incr_sessions_queued t = t.sessions_queued <- t.sessions_queued + 1
let incr_sessions_aborted t = t.sessions_aborted <- t.sessions_aborted + 1
let incr_sessions_retried t = t.sessions_retried <- t.sessions_retried + 1
let incr_validations_failed t = t.validations_failed <- t.validations_failed + 1
let incr_heartbeats_sent t = t.heartbeats_sent <- t.heartbeats_sent + 1
let incr_suspicions t = t.suspicions <- t.suspicions + 1
let incr_sheds t = t.sheds <- t.sheds + 1
let incr_breaker_trips t = t.breaker_trips <- t.breaker_trips + 1
let incr_recoveries t = t.recoveries <- t.recoveries + 1
let incr_offload_calls t = t.offload_calls <- t.offload_calls + 1
let add_offload_nodes t n = t.offload_nodes <- t.offload_nodes + n
let add_offload_wset t n = t.offload_wset <- t.offload_wset + n

let snapshot t : snapshot =
  {
    messages = t.messages;
    bytes = t.bytes;
    faults = t.faults;
    callbacks = t.callbacks;
    writebacks = t.writebacks;
    remote_allocs = t.remote_allocs;
    remote_frees = t.remote_frees;
    prefetched_bytes = t.prefetched_bytes;
    wasted_prefetch_bytes = t.wasted_prefetch_bytes;
    stall_ns = t.stall_ns;
    retries = t.retries;
    timeouts = t.timeouts;
    duplicates = t.duplicates;
    writeback_bytes = t.writeback_bytes;
    delta_bytes_saved = t.delta_bytes_saved;
    full_fallbacks = t.full_fallbacks;
    invalidations_skipped = t.invalidations_skipped;
    sessions_admitted = t.sessions_admitted;
    sessions_queued = t.sessions_queued;
    sessions_aborted = t.sessions_aborted;
    sessions_retried = t.sessions_retried;
    validations_failed = t.validations_failed;
    heartbeats_sent = t.heartbeats_sent;
    suspicions = t.suspicions;
    sheds = t.sheds;
    breaker_trips = t.breaker_trips;
    recoveries = t.recoveries;
    offload_calls = t.offload_calls;
    offload_nodes = t.offload_nodes;
    offload_wset = t.offload_wset;
  }

let reset t =
  t.messages <- 0;
  t.bytes <- 0;
  t.faults <- 0;
  t.callbacks <- 0;
  t.writebacks <- 0;
  t.remote_allocs <- 0;
  t.remote_frees <- 0;
  t.prefetched_bytes <- 0;
  t.wasted_prefetch_bytes <- 0;
  t.stall_ns <- 0;
  t.retries <- 0;
  t.timeouts <- 0;
  t.duplicates <- 0;
  t.writeback_bytes <- 0;
  t.delta_bytes_saved <- 0;
  t.full_fallbacks <- 0;
  t.invalidations_skipped <- 0;
  t.sessions_admitted <- 0;
  t.sessions_queued <- 0;
  t.sessions_aborted <- 0;
  t.sessions_retried <- 0;
  t.validations_failed <- 0;
  t.heartbeats_sent <- 0;
  t.suspicions <- 0;
  t.sheds <- 0;
  t.breaker_trips <- 0;
  t.recoveries <- 0;
  t.offload_calls <- 0;
  t.offload_nodes <- 0;
  t.offload_wset <- 0

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    messages = a.messages - b.messages;
    bytes = a.bytes - b.bytes;
    faults = a.faults - b.faults;
    callbacks = a.callbacks - b.callbacks;
    writebacks = a.writebacks - b.writebacks;
    remote_allocs = a.remote_allocs - b.remote_allocs;
    remote_frees = a.remote_frees - b.remote_frees;
    prefetched_bytes = a.prefetched_bytes - b.prefetched_bytes;
    wasted_prefetch_bytes = a.wasted_prefetch_bytes - b.wasted_prefetch_bytes;
    stall_ns = a.stall_ns - b.stall_ns;
    retries = a.retries - b.retries;
    timeouts = a.timeouts - b.timeouts;
    duplicates = a.duplicates - b.duplicates;
    writeback_bytes = a.writeback_bytes - b.writeback_bytes;
    delta_bytes_saved = a.delta_bytes_saved - b.delta_bytes_saved;
    full_fallbacks = a.full_fallbacks - b.full_fallbacks;
    invalidations_skipped = a.invalidations_skipped - b.invalidations_skipped;
    sessions_admitted = a.sessions_admitted - b.sessions_admitted;
    sessions_queued = a.sessions_queued - b.sessions_queued;
    sessions_aborted = a.sessions_aborted - b.sessions_aborted;
    sessions_retried = a.sessions_retried - b.sessions_retried;
    validations_failed = a.validations_failed - b.validations_failed;
    heartbeats_sent = a.heartbeats_sent - b.heartbeats_sent;
    suspicions = a.suspicions - b.suspicions;
    sheds = a.sheds - b.sheds;
    breaker_trips = a.breaker_trips - b.breaker_trips;
    recoveries = a.recoveries - b.recoveries;
    offload_calls = a.offload_calls - b.offload_calls;
    offload_nodes = a.offload_nodes - b.offload_nodes;
    offload_wset = a.offload_wset - b.offload_wset;
  }

let zero : snapshot =
  {
    messages = 0;
    bytes = 0;
    faults = 0;
    callbacks = 0;
    writebacks = 0;
    remote_allocs = 0;
    remote_frees = 0;
    prefetched_bytes = 0;
    wasted_prefetch_bytes = 0;
    stall_ns = 0;
    retries = 0;
    timeouts = 0;
    duplicates = 0;
    writeback_bytes = 0;
    delta_bytes_saved = 0;
    full_fallbacks = 0;
    invalidations_skipped = 0;
    sessions_admitted = 0;
    sessions_queued = 0;
    sessions_aborted = 0;
    sessions_retried = 0;
    validations_failed = 0;
    heartbeats_sent = 0;
    suspicions = 0;
    sheds = 0;
    breaker_trips = 0;
    recoveries = 0;
    offload_calls = 0;
    offload_nodes = 0;
    offload_wset = 0;
  }

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf
    "@[<h>msgs=%d bytes=%d faults=%d callbacks=%d writebacks=%d allocs=%d \
     frees=%d prefetched=%dB wasted=%dB stall=%dns retries=%d timeouts=%d \
     dups=%d wb=%dB saved=%dB fallbacks=%d inval-skipped=%d@]"
    s.messages s.bytes s.faults s.callbacks s.writebacks s.remote_allocs
    s.remote_frees s.prefetched_bytes s.wasted_prefetch_bytes s.stall_ns
    s.retries s.timeouts s.duplicates s.writeback_bytes s.delta_bytes_saved
    s.full_fallbacks s.invalidations_skipped;
  (* admission counters only appear once the concurrent-session layer is
     in play; single-session runs keep the historical one-line format *)
  if
    s.sessions_admitted <> 0 || s.sessions_queued <> 0
    || s.sessions_aborted <> 0 || s.sessions_retried <> 0
    || s.validations_failed <> 0
  then
    Format.fprintf ppf
      "@ @[<h>admitted=%d queued=%d adm-aborted=%d adm-retried=%d \
       validation-failed=%d@]"
      s.sessions_admitted s.sessions_queued s.sessions_aborted
      s.sessions_retried s.validations_failed;
  (* robustness counters likewise stay silent until the health/recovery
     layer is active *)
  if
    s.heartbeats_sent <> 0 || s.suspicions <> 0 || s.sheds <> 0
    || s.breaker_trips <> 0 || s.recoveries <> 0
  then
    Format.fprintf ppf
      "@ @[<h>heartbeats=%d suspicions=%d sheds=%d breaker-trips=%d \
       recoveries=%d@]"
      s.heartbeats_sent s.suspicions s.sheds s.breaker_trips s.recoveries;
  (* offload counters stay silent until a traversal plan is shipped *)
  if s.offload_calls <> 0 || s.offload_nodes <> 0 || s.offload_wset <> 0 then
    Format.fprintf ppf "@ @[<h>offloads=%d off-nodes=%d off-wset=%d@]"
      s.offload_calls s.offload_nodes s.offload_wset

type endpoint = string

exception Unknown_endpoint of endpoint

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cost : Cost_model.t;
  dispatchers : (endpoint, endpoint -> string -> string) Hashtbl.t;
  link_costs : (endpoint * endpoint, Cost_model.t) Hashtbl.t;
  mutable trace : Trace.t option;
}

let src_log = Logs.Src.create "srpc.transport" ~doc:"simulated transport"

module Log = (val Logs.src_log src_log : Logs.LOG)

let create ~clock ~stats ~cost =
  {
    clock;
    stats;
    cost;
    dispatchers = Hashtbl.create 16;
    link_costs = Hashtbl.create 4;
    trace = None;
  }

let clock t = t.clock
let stats t = t.stats
let cost t = t.cost
let set_link_cost t ~src ~dst cost = Hashtbl.replace t.link_costs (src, dst) cost
let clear_link_cost t ~src ~dst = Hashtbl.remove t.link_costs (src, dst)

let link_cost t ~src ~dst =
  match Hashtbl.find_opt t.link_costs (src, dst) with
  | Some c -> c
  | None -> t.cost

let set_trace t trace = t.trace <- trace

let mark t ~src kind =
  match t.trace with
  | Some trace -> Trace.mark trace ~at:(Clock.now t.clock) ~src kind
  | None -> ()
let register t ep dispatch = Hashtbl.replace t.dispatchers ep dispatch
let unregister t ep = Hashtbl.remove t.dispatchers ep
let is_registered t ep = Hashtbl.mem t.dispatchers ep
let endpoints t = Hashtbl.fold (fun ep _ acc -> ep :: acc) t.dispatchers []

let charge_frame t ~src ~dst ~dir frame =
  let bytes = String.length frame in
  Stats.incr_messages t.stats;
  Stats.add_bytes t.stats bytes;
  (match t.trace with
  | Some trace -> Trace.record trace ~at:(Clock.now t.clock) ~src ~dst ~dir ~bytes
  | None -> ());
  Clock.advance t.clock (Cost_model.frame_cost (link_cost t ~src ~dst) ~bytes)

let rpc t ~src ~dst request =
  match Hashtbl.find_opt t.dispatchers dst with
  | None -> raise (Unknown_endpoint dst)
  | Some dispatch ->
    Log.debug (fun m ->
        m "rpc %s -> %s (%d bytes)" src dst (String.length request));
    charge_frame t ~src ~dst ~dir:Trace.Request request;
    let reply = dispatch src request in
    charge_frame t ~src:dst ~dst:src ~dir:Trace.Reply reply;
    reply

let multicast t ~src ~dsts request =
  let send dst = if dst <> src then ignore (rpc t ~src ~dst request) in
  List.iter send dsts

let charge_fault t =
  Stats.incr_faults t.stats;
  Clock.advance t.clock t.cost.Cost_model.fault_overhead

let charge_local_touches t n =
  Clock.advance t.clock (float_of_int n *. t.cost.Cost_model.local_touch)

let charge_cpu_bytes t n =
  Clock.advance t.clock (float_of_int n *. t.cost.Cost_model.per_byte_cpu)

type endpoint = string

exception Unknown_endpoint of endpoint
exception Timeout of endpoint
exception Peer_crashed of endpoint

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cost : Cost_model.t;
  dispatchers : (endpoint, endpoint -> string -> string) Hashtbl.t;
  link_costs : (endpoint * endpoint, Cost_model.t) Hashtbl.t;
  mutable trace : Trace.t option;
  mutable faults : Fault_plan.t option;
  mutable labeler : (dir:Trace.direction -> string -> string) option;
}

let src_log = Logs.Src.create "srpc.transport" ~doc:"simulated transport"

module Log = (val Logs.src_log src_log : Logs.LOG)

let create ~clock ~stats ~cost =
  {
    clock;
    stats;
    cost;
    dispatchers = Hashtbl.create 16;
    link_costs = Hashtbl.create 4;
    trace = None;
    faults = None;
    labeler = None;
  }

let clock t = t.clock
let stats t = t.stats
let cost t = t.cost
let set_link_cost t ~src ~dst cost = Hashtbl.replace t.link_costs (src, dst) cost
let clear_link_cost t ~src ~dst = Hashtbl.remove t.link_costs (src, dst)

let link_cost t ~src ~dst =
  match Hashtbl.find_opt t.link_costs (src, dst) with
  | Some c -> c
  | None -> t.cost

let set_trace t trace = t.trace <- trace
let traced t = Option.is_some t.trace
let set_frame_labeler t labeler = t.labeler <- labeler
let set_fault_plan t plan = t.faults <- plan
let fault_plan t = t.faults

let mark t ~src kind =
  match t.trace with
  | Some trace -> Trace.mark trace ~at:(Clock.now t.clock) ~src kind
  | None -> ()

(* Protocol notes are bookkeeping witnesses, not traffic: they name a
   destination but move no bytes, so no stats and no clock time. *)
let note t ~src ~dst kind =
  match t.trace with
  | Some trace ->
    Trace.record_kind trace ~at:(Clock.now t.clock) ~src ~dst ~kind ~bytes:0
  | None -> ()

let crash t ep =
  match t.faults with
  | None -> invalid_arg "Transport.crash: no fault plan installed"
  | Some plan ->
    if not (Fault_plan.is_crashed plan ep) then begin
      Fault_plan.crash plan ep;
      mark t ~src:ep (Trace.Crash ep)
    end

let revive t ep =
  match t.faults with
  | None -> invalid_arg "Transport.revive: no fault plan installed"
  | Some plan ->
    if Fault_plan.is_crashed plan ep then begin
      Fault_plan.revive plan ep;
      mark t ~src:ep (Trace.Revive ep)
    end

let register t ep dispatch = Hashtbl.replace t.dispatchers ep dispatch
let unregister t ep = Hashtbl.remove t.dispatchers ep
let is_registered t ep = Hashtbl.mem t.dispatchers ep
let endpoints t = Hashtbl.fold (fun ep _ acc -> ep :: acc) t.dispatchers []

let record_frame t ~src ~dst ~kind frame =
  let bytes = String.length frame in
  Stats.incr_messages t.stats;
  Stats.add_bytes t.stats bytes;
  (match t.trace with
  | Some trace ->
    let label =
      match (t.labeler, kind) with
      | Some f, (Trace.Message dir | Trace.Dropped dir | Trace.Dup dir) ->
        (try f ~dir frame with _ -> "")
      | _ -> ""
    in
    Trace.record_kind ~label trace ~at:(Clock.now t.clock) ~src ~dst ~kind
      ~bytes
  | None -> ());
  Clock.advance t.clock (Cost_model.frame_cost (link_cost t ~src ~dst) ~bytes)

let charge_frame t ~src ~dst ~dir frame =
  record_frame t ~src ~dst ~kind:(Trace.Message dir) frame

(* A lost frame: record it as dropped (charging wire time for the send),
   then burn the sender's timeout waiting for a reply that never comes. *)
let lose_frame t plan ~src ~dst ~dir frame =
  record_frame t ~src ~dst ~kind:(Trace.Dropped dir) frame;
  Stats.incr_timeouts t.stats;
  Clock.advance t.clock (Fault_plan.timeout plan)

let deliver_frame t plan ~src ~dst ~dir frame =
  record_frame t ~src ~dst ~kind:(Trace.Message dir) frame;
  Clock.advance t.clock (Fault_plan.extra_latency plan ~src ~dst)

let rpc_faulty t plan dispatch ~src ~dst request =
  if Fault_plan.is_crashed plan dst then raise (Peer_crashed dst);
  if Fault_plan.is_crashed plan src then raise (Peer_crashed src);
  let req_fate = Fault_plan.frame_fate plan ~src ~dst in
  (match req_fate with
  | Fault_plan.Drop ->
    lose_frame t plan ~src ~dst ~dir:Trace.Request request;
    raise (Timeout dst)
  | Fault_plan.Deliver | Fault_plan.Duplicate -> ());
  deliver_frame t plan ~src ~dst ~dir:Trace.Request request;
  if req_fate = Fault_plan.Duplicate then
    record_frame t ~src ~dst ~kind:(Trace.Dup Trace.Request) request;
  let reply = dispatch src request in
  let rep_fate = Fault_plan.frame_fate plan ~src:dst ~dst:src in
  (match rep_fate with
  | Fault_plan.Drop ->
    lose_frame t plan ~src:dst ~dst:src ~dir:Trace.Reply reply;
    raise (Timeout dst)
  | Fault_plan.Deliver | Fault_plan.Duplicate -> ());
  deliver_frame t plan ~src:dst ~dst:src ~dir:Trace.Reply reply;
  (match req_fate with
  | Fault_plan.Duplicate ->
    (* the duplicate request arrives after the first exchange completed;
       the receiver's reply cache replays and its answer is discarded *)
    let dup_reply = dispatch src request in
    record_frame t ~src:dst ~dst:src ~kind:(Trace.Dup Trace.Reply) dup_reply
  | _ -> ());
  if rep_fate = Fault_plan.Duplicate then
    record_frame t ~src:dst ~dst:src ~kind:(Trace.Dup Trace.Reply) reply;
  reply

let rpc t ~src ~dst request =
  match Hashtbl.find_opt t.dispatchers dst with
  | None -> raise (Unknown_endpoint dst)
  | Some dispatch -> (
    Log.debug (fun m ->
        m "rpc %s -> %s (%d bytes)" src dst (String.length request));
    match t.faults with
    | None ->
      charge_frame t ~src ~dst ~dir:Trace.Request request;
      let reply = dispatch src request in
      charge_frame t ~src:dst ~dst:src ~dir:Trace.Reply reply;
      reply
    | Some plan -> rpc_faulty t plan dispatch ~src ~dst request)

let multicast t ~src ~dsts request =
  let send acc dst =
    if String.equal dst src then acc
    else
      match rpc t ~src ~dst request with
      | _ -> acc
      | exception ((Unknown_endpoint _ | Timeout _ | Peer_crashed _) as e) ->
        (dst, e) :: acc
  in
  List.rev (List.fold_left send [] dsts)

let charge_fault t =
  Stats.incr_faults t.stats;
  Clock.advance t.clock t.cost.Cost_model.fault_overhead

let charge_local_touches t n =
  Clock.advance t.clock (float_of_int n *. t.cost.Cost_model.local_touch)

let charge_cpu_bytes t n =
  Clock.advance t.clock (float_of_int n *. t.cost.Cost_model.per_byte_cpu)
